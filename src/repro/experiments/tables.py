"""One function per paper table, returning a measured-vs-paper Comparison."""

from __future__ import annotations

from repro.experiments import paper
from repro.experiments.report import Comparison
from repro.experiments.runner import Runner, default_runner
from repro.geometry.primitives import PrimitiveType
from repro.gpu.config import GpuConfig
from repro.gpu.stats import MemClient, QuadFate
from repro.workloads import workload as workload_spec


def table1(runner: Runner | None = None) -> Comparison:
    """Table I: game workload description (registry metadata)."""
    comparison = Comparison(
        "Table I",
        "Game workload description",
        ["Game/Timedemo", "Frames", "Duration @30fps", "Texture quality",
         "Aniso", "Shaders", "API", "Engine", "Release"],
    )
    for name in paper.WORKLOAD_ORDER:
        spec = workload_spec(name)
        frames, duration, quality, aniso, shaders = paper.TABLE1[name]
        comparison.rows.append(
            [
                name,
                (spec.frames, frames),
                (spec.duration_s, float(duration)),
                spec.texture_quality,
                f"{spec.aniso_level}X" if spec.aniso_level else "-",
                "YES" if spec.uses_shaders else "NO",
                spec.api.value,
                spec.engine,
                spec.release,
            ]
        )
    return comparison


def table2(config: GpuConfig | None = None) -> Comparison:
    """Table II: ATTILA configuration vs the reference R520."""
    config = config or GpuConfig.r520()
    comparison = Comparison(
        "Table II",
        "Simulator configuration",
        ["Parameter", "R520", "This simulator"],
    )
    comparison.rows.extend(list(row) for row in config.table2_rows())
    return comparison


def table3(runner: Runner | None = None) -> Comparison:
    """Table III: average indices per batch/frame and index bandwidth."""
    runner = runner or default_runner()
    comparison = Comparison(
        "Table III",
        "Average indices per batch and frame, index BW @100fps",
        ["Game/Timedemo", "idx/batch", "idx/frame", "bytes/idx", "MB/s @100fps"],
    )
    for name in paper.WORKLOAD_ORDER:
        stats = runner.api(name)
        per_batch, per_frame, bytes_idx, mbs = paper.TABLE3[name]
        comparison.rows.append(
            [
                name,
                (stats.avg_indices_per_batch, per_batch),
                (stats.avg_indices_per_frame, per_frame),
                (stats.index_size_bytes, bytes_idx),
                (stats.index_bandwidth_bytes_per_s(100.0) / 1e6, mbs),
            ]
        )
    return comparison


def table4(runner: Runner | None = None) -> Comparison:
    """Table IV: average vertex shader instructions per vertex."""
    runner = runner or default_runner()
    comparison = Comparison(
        "Table IV",
        "Average vertex shader instructions",
        ["Game/Timedemo", "Vertex instructions"],
    )
    for name in paper.WORKLOAD_ORDER:
        stats = runner.api(name)
        target = paper.TABLE4[name]
        if isinstance(target, tuple):
            # Oblivion: two regions; compare the per-region averages.
            half = len(stats.frames) // 2
            region1 = _avg_vertex(stats.frames[:half])
            region2 = _avg_vertex(stats.frames[half:])
            comparison.rows.append(
                [name + " (reg1)", (region1, target[0])]
            )
            comparison.rows.append(
                [name + " (reg2)", (region2, target[1])]
            )
        else:
            comparison.rows.append(
                [name, (stats.avg_vertex_instructions, target)]
            )
    return comparison


def _avg_vertex(frames) -> float:
    weight = sum(f.vertex_weight for f in frames)
    if weight == 0:
        return 0.0
    return sum(f.vertex_instr_weighted for f in frames) / weight


def table5(runner: Runner | None = None) -> Comparison:
    """Table V: primitive utilization and primitives per frame."""
    runner = runner or default_runner()
    comparison = Comparison(
        "Table V",
        "Primitive utilization",
        ["Game/Timedemo", "TL %", "TS %", "TF %", "prims/frame"],
    )
    for name in paper.WORKLOAD_ORDER:
        stats = runner.api(name)
        share = stats.primitive_share
        tl, ts, tf, prims = paper.TABLE5[name]
        comparison.rows.append(
            [
                name,
                (100 * share.get(PrimitiveType.TRIANGLE_LIST, 0.0), tl),
                (100 * share.get(PrimitiveType.TRIANGLE_STRIP, 0.0), ts),
                (100 * share.get(PrimitiveType.TRIANGLE_FAN, 0.0), tf),
                (stats.avg_primitives_per_frame, prims),
            ]
        )
    return comparison


def table6() -> Comparison:
    """Table VI: system bus bandwidths (reference model, no measurement)."""
    comparison = Comparison(
        "Table VI",
        "Current system bus bandwidths",
        ["Bus", "Width", "Bus speed", "GB/s"],
    )
    for bus, width, speed, gbs in paper.TABLE6:
        measured = _bus_bandwidth_gbs(bus)
        comparison.rows.append([bus, width, speed, (measured, gbs)])
    comparison.notes.append(
        "computed from first principles: clocks x width (AGP) or "
        "2.5 Gbaud x lanes x 8b/10b (PCIe)"
    )
    return comparison


def _bus_bandwidth_gbs(bus: str) -> float:
    if bus.startswith("AGP"):
        multiplier = int(bus.split()[1][:-1])
        return 66e6 * multiplier * 4 / 1e9  # 32-bit wide
    lanes = int(bus.rsplit("x", 1)[1].split()[0])
    return 2.5e9 * lanes * (8 / 10) / 8 / 1e9


def table7(runner: Runner | None = None) -> Comparison:
    """Table VII: % clipped / culled / traversed triangles."""
    runner = runner or default_runner()
    comparison = Comparison(
        "Table VII",
        "Percentage of clipped, culled and traversed triangles",
        ["Game/Timedemo", "% clipped", "% culled", "% traversed"],
    )
    for name in paper.SIMULATED:
        stats = runner.geometry(name).stats
        clipped, culled, traversed = stats.clip_cull_traverse_percent
        p_clip, p_cull, p_trav = paper.TABLE7[name]
        comparison.rows.append(
            [name, (clipped, p_clip), (culled, p_cull), (traversed, p_trav)]
        )
    return comparison


def table8(runner: Runner | None = None) -> Comparison:
    """Table VIII: average triangle size (fragments) per stage."""
    runner = runner or default_runner()
    comparison = Comparison(
        "Table VIII",
        "Average triangle size in fragments",
        ["Game/Timedemo", "Raster", "Z&Stencil", "Shading", "Blending"],
    )
    for name in paper.SIMULATED:
        stats = runner.sim(name).stats
        p = paper.TABLE8[name]
        comparison.rows.append(
            [
                name,
                (stats.avg_triangle_size("raster"), p[0]),
                (stats.avg_triangle_size("zstencil"), p[1]),
                (stats.avg_triangle_size("shaded"), p[2]),
                (stats.avg_triangle_size("blended"), p[3]),
            ]
        )
    comparison.notes.append(
        "simulated at reduced resolution/geometry; compare relative sizes"
    )
    return comparison


def table9(runner: Runner | None = None) -> Comparison:
    """Table IX: % of quads removed or processed at each stage."""
    runner = runner or default_runner()
    comparison = Comparison(
        "Table IX",
        "Percentage of removed or processed quads at each stage",
        ["Game/Timedemo", "HZ", "Z&Stencil", "Alpha", "Color Mask", "Blending"],
    )
    for name in paper.SIMULATED:
        fates = runner.sim(name).stats.quad_fate_percent
        p = paper.TABLE9[name]
        comparison.rows.append(
            [
                name,
                (fates[QuadFate.HZ], p[0]),
                (fates[QuadFate.ZSTENCIL], p[1]),
                (fates[QuadFate.ALPHA], p[2]),
                (fates[QuadFate.COLOR_MASK], p[3]),
                (fates[QuadFate.BLENDED], p[4]),
            ]
        )
    return comparison


def table10(runner: Runner | None = None) -> Comparison:
    """Table X: quad efficiency (% complete quads)."""
    runner = runner or default_runner()
    comparison = Comparison(
        "Table X",
        "Quad efficiency (% complete quads)",
        ["Game/Timedemo", "Raster", "Z&Stencil"],
    )
    for name in paper.SIMULATED:
        stats = runner.sim(name).stats
        p = paper.TABLE10[name]
        comparison.rows.append(
            [
                name,
                (100 * stats.quad_efficiency_raster, p[0]),
                (100 * stats.quad_efficiency_zstencil, p[1]),
            ]
        )
    return comparison


def table11(runner: Runner | None = None) -> Comparison:
    """Table XI: average overdraw per pixel and stage."""
    runner = runner or default_runner()
    comparison = Comparison(
        "Table XI",
        "Average overdraw per pixel and stage",
        ["Game/Timedemo", "Raster", "Z&Stencil", "Shading", "Blending"],
    )
    for name in paper.SIMULATED:
        result = runner.sim(name)
        p = paper.TABLE11[name]
        comparison.rows.append(
            [
                name,
                (result.overdraw("raster"), p[0]),
                (result.overdraw("zstencil"), p[1]),
                (result.overdraw("shaded"), p[2]),
                (result.overdraw("blended"), p[3]),
            ]
        )
    return comparison


def table12(runner: Runner | None = None) -> Comparison:
    """Table XII: fragment program instructions / texture / ALU:TEX ratio."""
    runner = runner or default_runner()
    comparison = Comparison(
        "Table XII",
        "Fragment program instructions and ALU to texture ratio",
        ["Game/Timedemo", "Instructions", "Texture", "ALU:TEX"],
    )
    for name in paper.WORKLOAD_ORDER:
        stats = runner.api(name)
        p = paper.TABLE12[name]
        comparison.rows.append(
            [
                name,
                (stats.avg_fragment_instructions, p[0]),
                (stats.avg_texture_instructions, p[1]),
                (stats.alu_to_texture_ratio, p[2]),
            ]
        )
    return comparison


def table13(runner: Runner | None = None) -> Comparison:
    """Table XIII: bilinear samples per request and ALU per bilinear."""
    runner = runner or default_runner()
    comparison = Comparison(
        "Table XIII",
        "Average bilinear samples and ALU to bilinear ratio",
        ["Game/Timedemo", "Bilinears/request", "ALU instr/bilinear"],
    )
    for name in paper.SIMULATED:
        stats = runner.sim(name).stats
        p = paper.TABLE13[name]
        comparison.rows.append(
            [
                name,
                (stats.bilinears_per_texture_request, p[0]),
                (stats.alu_per_bilinear, p[1]),
            ]
        )
    return comparison


def table14(runner: Runner | None = None) -> Comparison:
    """Table XIV: cache configuration and hit rates."""
    runner = runner or default_runner()
    comparison = Comparison(
        "Table XIV",
        "Cache configuration and hit rate",
        ["Cache", "Size (paper)", "Organization (paper)", "Size (sim)"]
        + [f"{n.split('/')[0]}" for n in paper.SIMULATED],
    )
    sims = {name: runner.sim(name) for name in paper.SIMULATED}
    any_config = next(iter(sims.values())).config
    sim_caches = {
        "zstencil": any_config.zstencil_cache,
        "texture_l0": any_config.texture_l0,
        "texture_l1": any_config.texture_l1,
        "color": any_config.color_cache,
    }
    for cache_name, (size, organization, rates) in paper.TABLE14.items():
        row = [
            cache_name,
            size,
            organization,
            f"{sim_caches[cache_name].size_bytes // 1024} KB "
            f"({sim_caches[cache_name].describe()})",
        ]
        for name in paper.SIMULATED:
            measured = 100 * sims[name].caches[cache_name].hit_rate
            published = rates.get(name)
            row.append((measured, published) if published else measured)
        comparison.rows.append(row)
    comparison.notes.append(
        "caches scaled with the reduced framebuffer to preserve the "
        "cache:screen footprint ratio (see DESIGN.md)"
    )
    return comparison


def table15(runner: Runner | None = None) -> Comparison:
    """Table XV: average memory usage profile."""
    runner = runner or default_runner()
    comparison = Comparison(
        "Table XV",
        "Average memory usage profile",
        ["Game/Timedemo", "MB/frame", "% read", "% write", "GB/s @100fps"],
    )
    for name in paper.SIMULATED:
        result = runner.sim(name)
        mem = result.memory
        frames = result.stats.frames
        p = paper.TABLE15[name]
        # Normalize MB/frame to the paper's 1024x768 pixel count so the
        # magnitudes are comparable (per-pixel traffic dominates).
        scale = (1024 * 768) / result.pixels
        mb_frame = mem.bytes_per_frame(frames) * scale / 1e6
        comparison.rows.append(
            [
                name,
                (mb_frame, p[0]),
                (100 * mem.read_fraction, p[1]),
                (100 * (1 - mem.read_fraction), p[2]),
                (mb_frame * 100 / 1e3, p[3]),
            ]
        )
    comparison.notes.append(
        "MB/frame scaled by the pixel ratio to the paper's 1024x768"
    )
    return comparison


def table16(runner: Runner | None = None) -> Comparison:
    """Table XVI: memory traffic distribution per GPU stage."""
    runner = runner or default_runner()
    comparison = Comparison(
        "Table XVI",
        "Memory traffic distribution per GPU stage (%)",
        ["Game/Timedemo", "Vertex", "Z&Stencil", "Texture", "Color", "DAC", "CP"],
    )
    order = [
        MemClient.VERTEX,
        MemClient.ZSTENCIL,
        MemClient.TEXTURE,
        MemClient.COLOR,
        MemClient.DAC,
        MemClient.CP,
    ]
    for name in paper.SIMULATED:
        distribution = runner.sim(name).memory.traffic_distribution
        p = paper.TABLE16[name]
        comparison.rows.append(
            [name]
            + [
                (distribution[client], p[i])
                for i, client in enumerate(order)
            ]
        )
    return comparison


def table17(runner: Runner | None = None) -> Comparison:
    """Table XVII: bytes per shaded vertex and per fragment per stage."""
    runner = runner or default_runner()
    comparison = Comparison(
        "Table XVII",
        "Bytes per vertex and fragment",
        ["Game/Timedemo", "Vertex", "Z&Stencil", "Shaded", "Color"],
    )
    for name in paper.SIMULATED:
        result = runner.sim(name)
        stats = result.stats
        mem = result.memory
        p = paper.TABLE17[name]

        def per(client: MemClient, count: int) -> float:
            return mem.client_bytes(client) / count if count else 0.0

        comparison.rows.append(
            [
                name,
                (per(MemClient.VERTEX, stats.vertices_shaded), p[0]),
                (per(MemClient.ZSTENCIL, stats.fragments_zstencil), p[1]),
                (per(MemClient.TEXTURE, stats.fragments_shaded), p[2]),
                (per(MemClient.COLOR, stats.fragments_blended), p[3]),
            ]
        )
    comparison.notes.append(
        "scale-bound: per-fragment bytes depend on the cache:footprint "
        "ratios of the reduced profile (DESIGN.md); color runs ~2x the "
        "paper because the uniform-block compression rarely fires on the "
        "synthetic additive lighting"
    )
    return comparison


ALL_TABLES = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "table6": table6,
    "table7": table7,
    "table8": table8,
    "table9": table9,
    "table10": table10,
    "table11": table11,
    "table12": table12,
    "table13": table13,
    "table14": table14,
    "table15": table15,
    "table16": table16,
    "table17": table17,
}
