"""Frame-level mega-batch execution (``GpuConfig(fused=True)``).

The QuadStream path (``vectorized=True``) removed the per-triangle Python
loop but still dispatches every pipeline stage once per draw; a frame with
hundreds of draws pays hundreds of small native calls and numpy staging
rounds per stage.  This module fuses the frame: every early-Z draw's
rasterized quads are appended to one pre-grown structure-of-arrays arena
(:class:`FrameArena`), and the HZ-cull + Z/stencil stage then runs as a
single GIL-released native pass per *chunk* of consecutive early-Z draws
(:func:`repro.gpu._native.zpass`), with per-draw render state gathered
through a segment-id indirection table instead of Python dispatch.

Determinism contract: statistics, quad fates, cache reference streams, and
framebuffer images are bit-identical to the per-triangle reference path.
The native pass replays the reference schedule exactly — per
(segment, triangle) group: HZ cull against the group-frozen HZ state,
sequential lane test/write, then the idempotent per-block stencil-band and
HZ refreshes.  Shading and color blending run per segment, in segment
order, through the same stage code the QuadStream path uses, so every
cache's reference stream is unchanged.  The one deliberate approximation
(shared with the QuadStream path, just wider): dirty z-cache evictions
probe block compressibility against end-of-*chunk* z contents rather than
end-of-draw, which can flip a z writeback between compressed and raw size —
this affects z memory byte totals only, never hit/miss counts, statistics,
fates, or framebuffer contents.

Tile threading: ``GpuConfig.threads > 1`` splits a chunk's quads into
horizontal bands of framebuffer blocks and runs the native pass per band in
an in-process thread pool (the kernel call releases the GIL).  Quads never
span an 8x8 block and bands never split a block, so the per-block operation
sequences — the only ordering the stage observes — are untouched by the
partition, and results are bit-identical at any thread count.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.gpu import _native
from repro.gpu.rasterizer import QuadStream, rasterize_draw
from repro.gpu.stats import FrameGpuStats, QuadFate
from repro.observe import spans as obs_spans

_DEPTH_FUNC_CODE = {"never": 0, "less": 1, "lequal": 2, "equal": 3, "always": 4}
_STENCIL_FUNC_CODE = {"always": 0, "never": 1, "equal": 2, "notequal": 3}
_STENCIL_OP_CODE = {
    "keep": 0,
    "zero": 1,
    "replace": 2,
    "incr_wrap": 3,
    "decr_wrap": 4,
}
_PARAMS_PER_SEG = 16


class FrameArena:
    """Growable SoA buffers holding every enqueued quad of the frame.

    Only the fields the native Z/stencil pass reads are copied in —
    position, coverage, depth, triangle id, facing, plus the per-quad
    segment id.  Shading interpolants (uv, color) stay on the per-draw
    :class:`QuadStream` each :class:`Segment` keeps a reference to, so the
    arena copy is ~70 bytes/quad instead of ~260.  Capacity grows 4x (from
    a 64K-quad floor) and survives :meth:`reset`, so after the first frame
    appends are plain slice copies.
    """

    def __init__(self) -> None:
        self._cap = 0
        self.n = 0

    def _grow(self, need: int) -> None:
        cap = max(need, max(4 * self._cap, 1 << 16))
        arrays = {
            "qx": np.empty(cap, dtype=np.int64),
            "qy": np.empty(cap, dtype=np.int64),
            "cover": np.empty((cap, 4), dtype=bool),
            "z": np.empty((cap, 4), dtype=np.float64),
            "tri": np.empty(cap, dtype=np.int64),
            "front": np.empty(cap, dtype=bool),
            "seg": np.empty(cap, dtype=np.int64),
        }
        n = self.n
        for name, arr in arrays.items():
            if n:
                arr[:n] = getattr(self, name)[:n]
            setattr(self, name, arr)
        self._cap = cap

    def append(self, stream: QuadStream, seg_id: int) -> None:
        count = stream.quad_count
        if self.n + count > self._cap:
            self._grow(self.n + count)
        s, e = self.n, self.n + count
        self.qx[s:e] = stream.qx
        self.qy[s:e] = stream.qy
        self.cover[s:e] = stream.cover
        self.z[s:e] = stream.z
        self.tri[s:e] = stream.tri
        self.front[s:e] = stream.front
        self.seg[s:e] = seg_id
        self.n = e

    def reset(self) -> None:
        self.n = 0


@dataclass
class Segment:
    """One enqueued draw: its arena rows plus the state the stages need."""

    start: int
    end: int
    stream: QuadStream  # full per-draw stream (uv/color live here, not in the arena)
    state: object  # RenderState (frozen dataclass; the machine replaces, never mutates)
    fp: object
    early_z: bool
    hz_on: bool
    fstats: FrameGpuStats
    bindings: dict[int, str]


class FusedExecutor:
    """Accumulates draws into the arena; flush runs the fused stages."""

    def __init__(self, sim) -> None:
        self.sim = sim
        self.arena = FrameArena()
        self.segments: list[Segment] = []
        self._pool: ThreadPoolExecutor | None = None

    # A checkpointed simulator pickles at frame boundaries where the arena
    # is empty, so only the back-reference needs to survive.
    def __getstate__(self) -> dict:
        return {"sim": self.sim}

    def __setstate__(self, state: dict) -> None:
        self.sim = state["sim"]
        self.arena = FrameArena()
        self.segments = []
        self._pool = None

    # -- enqueue (draw time) ---------------------------------------------
    def enqueue(self, tris, fp, state, fstats: FrameGpuStats,
                early_z: bool, hz_on: bool) -> None:
        """Rasterize one draw into the arena; stages run at flush.

        Raster statistics and the per-draw region log are recorded here
        (rasterization really happens now); everything downstream is
        deferred.  The render state is a frozen dataclass the state machine
        replaces rather than mutates, so a plain reference is a snapshot;
        the texture-binding table does mutate and is copied.  Late-Z (KIL)
        draws skip the arena — only the native Z pass reads it — and run
        straight off their own stream at flush.
        """
        sim = self.sim
        with obs_spans.span("gpu.stage.raster", "gpu"):
            stream = rasterize_draw(tris, sim.config.width, sim.config.height)
        if sim._region_log is not None:
            sim._region_log.append(
                None if stream is None else stream.region_footprint()
            )
        if stream is None:
            return
        fstats.fragments_rasterized += stream.fragment_count
        fstats.quads_rasterized += stream.quad_count
        fstats.complete_quads_rasterized += stream.complete_quads
        start = self.arena.n
        if early_z and _native.available():
            self.arena.append(stream, len(self.segments))
        self.segments.append(
            Segment(
                start=start,
                end=self.arena.n,
                stream=stream,
                state=state,
                fp=fp,
                early_z=early_z,
                hz_on=hz_on,
                fstats=fstats,
                bindings=dict(sim.texture_unit._bindings),
            )
        )

    # -- flush (frame boundary / hazard point) ---------------------------
    def flush(self) -> None:
        """Run every pending segment's remaining stages, in segment order."""
        segments = self.segments
        if not segments:
            self.arena.reset()
            return
        try:
            index = 0
            while index < len(segments):
                if segments[index].early_z:
                    upper = index
                    while upper < len(segments) and segments[upper].early_z:
                        upper += 1
                    self._run_early_chunk(segments[index:upper])
                    index = upper
                else:
                    self._run_late_segment(segments[index])
                    index += 1
        finally:
            self.segments = []
            self.arena.reset()

    # -- internals -------------------------------------------------------
    def _restore_bindings(self, segment: Segment) -> None:
        self.sim.texture_unit._bindings = dict(segment.bindings)

    def _segment_params(self, segment: Segment) -> list[int]:
        state = segment.state
        config = self.sim.config
        front = state.stencil_front
        back = state.stencil_back
        return [
            int(state.depth_test),
            _DEPTH_FUNC_CODE.get(state.depth_func, 0) if state.depth_test else 0,
            int(state.depth_write),
            int(state.stencil_test),
            _STENCIL_FUNC_CODE.get(state.stencil_func, 1)
            if state.stencil_test
            else 0,
            int(state.stencil_ref),
            int(state.stencil_write),
            _STENCIL_OP_CODE[front.sfail],
            _STENCIL_OP_CODE[front.zfail],
            _STENCIL_OP_CODE[front.zpass],
            _STENCIL_OP_CODE[back.sfail],
            _STENCIL_OP_CODE[back.zfail],
            _STENCIL_OP_CODE[back.zpass],
            int(segment.hz_on),
            int(config.hz_min_max and state.depth_func == "equal"),
            int(config.hz_stencil and state.stencil_test),
        ]

    def _run_early_chunk(self, chunk: list[Segment]) -> None:
        """HZ + Z/stencil for consecutive early-Z segments in one pass."""
        sim = self.sim
        if not _native.available():
            # Pure-Python fallback: each segment runs the QuadStream stage
            # code (which does its own accounting and fate counting).
            for segment in chunk:
                stream = segment.stream
                with obs_spans.span("gpu.stage.zstencil", "gpu"):
                    surv, pass_mask = sim._zstencil_stream(
                        stream, stream.cover, segment.state,
                        segment.fstats, segment.hz_on,
                    )
                if surv.any():
                    self._shade_segment(
                        segment, stream.select(surv), pass_mask[surv]
                    )
            return

        base, end = chunk[0].start, chunk[-1].end
        params = np.asarray(
            [self._segment_params(segment) for segment in self.segments],
            dtype=np.int64,
        ).reshape(len(self.segments), _PARAMS_PER_SEG)
        seg_counts = np.zeros(len(self.segments) * 4, dtype=np.int64)
        pass_mask = np.zeros((self.arena.n, 4), dtype=np.uint8)
        entered = np.zeros(self.arena.n, dtype=np.uint8)
        wrote = np.zeros(self.arena.n, dtype=np.uint8)
        schanged = np.zeros(self.arena.n, dtype=np.uint8)
        with obs_spans.span("gpu.stage.zstencil", "gpu"):
            self._run_zpass(
                base, end, params, pass_mask, entered, wrote, schanged,
                seg_counts,
            )

        pass_b = pass_mask.view(bool)
        entered_b = entered.view(bool)
        wrote_b = wrote.view(bool)
        for segment in chunk:
            seg_id = self.arena.seg[segment.start]
            counts = seg_counts[seg_id * 4 : seg_id * 4 + 4]
            fstats = segment.fstats
            fstats.count_quad_fates(QuadFate.HZ, int(counts[0]))
            fstats.fragments_zstencil += int(counts[1])
            fstats.quads_zstencil += int(counts[2])
            fstats.complete_quads_zstencil += int(counts[3])
            sl = slice(segment.start, segment.end)
            seg_entered = entered_b[sl]
            seg_pass = pass_b[sl]
            seg_wrote = wrote_b[sl]
            stream = segment.stream
            sim.zstencil.account_stream(
                stream.qx[seg_entered],
                stream.qy[seg_entered],
                seg_wrote[seg_entered],
            )
            surv = seg_entered & seg_pass.any(axis=1)
            fstats.count_quad_fates(
                QuadFate.ZSTENCIL, int(seg_entered.sum() - surv.sum())
            )
            if surv.any():
                self._shade_segment(segment, stream.select(surv), seg_pass[surv])

    def _run_zpass(
        self,
        base: int,
        end: int,
        params: np.ndarray,
        pass_mask: np.ndarray,
        entered: np.ndarray,
        wrote: np.ndarray,
        schanged: np.ndarray,
        seg_counts: np.ndarray,
    ) -> None:
        """Dispatch the native pass over arena rows [base, end) by tile."""
        sim = self.sim
        fb = sim.fb
        arena = self.arena
        threads = sim.config.threads
        kernel_args = (
            arena.seg, arena.tri, arena.qx, arena.qy,
            arena.cover.view(np.uint8), arena.z, arena.front.view(np.uint8),
            params, fb.z, fb.stencil, fb.hz_max, fb.hz_min,
            fb.hz_stencil_min, fb.hz_stencil_max, fb.block,
            pass_mask, entered, wrote, schanged,
        )
        if threads <= 1 or fb.blocks_y <= 1:
            idx = np.arange(base, end, dtype=np.int64)
            _native.zpass(idx, *kernel_args, seg_counts)
            return
        # Horizontal block bands: a quad's band is a pure function of its
        # position, so the partition (and every per-band walk) is
        # deterministic, and bands touch disjoint framebuffer blocks.
        band = -(-fb.blocks_y // threads)
        tile_of = (arena.qy[base:end] * 2 // fb.block) // band
        tiles = []
        for tile in range(int(tile_of.max()) + 1):
            idx = base + np.nonzero(tile_of == tile)[0]
            if idx.size:
                tiles.append(np.ascontiguousarray(idx, dtype=np.int64))
        if len(tiles) == 1:
            _native.zpass(tiles[0], *kernel_args, seg_counts)
            return
        pool = self._pool
        if pool is None:
            pool = self._pool = ThreadPoolExecutor(max_workers=threads)
        partials = [
            np.zeros(seg_counts.shape[0], dtype=np.int64) for _ in tiles
        ]
        futures = [
            pool.submit(_native.zpass, idx, *kernel_args, partial)
            for idx, partial in zip(tiles, partials)
        ]
        for future in futures:
            future.result()
        for partial in partials:
            seg_counts += partial

    def _shade_segment(
        self, segment: Segment, stream: QuadStream, live: np.ndarray
    ) -> None:
        self._restore_bindings(segment)
        with obs_spans.span("gpu.stage.shade", "gpu"):
            self.sim._shade_and_write_stream(
                stream, live, segment.fp, segment.state, segment.fstats,
                early_z=True,
            )

    def _run_late_segment(self, segment: Segment) -> None:
        """Late-Z (KIL shader) draw: the QuadStream path, run at flush."""
        sim = self.sim
        fstats = segment.fstats
        state = segment.state
        stream = segment.stream
        if segment.hz_on:
            culled = sim._hz_cull(
                stream.qx, stream.qy, stream.z, stream.cover, state, fstats
            )
            if culled.all():
                return
            if culled.any():
                stream = stream.select(~culled)
        self._restore_bindings(segment)
        with obs_spans.span("gpu.stage.shade", "gpu"):
            sim._shade_and_write_stream(
                stream, stream.cover, segment.fp, state, fstats, early_z=False
            )
