"""Optional C-accelerated LRU kernel for :class:`repro.gpu.caches.Cache`.

The pure-Python loop in ``caches.py`` remains the reference implementation;
this module compiles the exact same set-associative LRU walk to a tiny
shared object with the system C compiler and loads it through :mod:`ctypes`.
Draw-level QuadStream batching hands the cache model reference streams of
millions of lines per call, where the interpreted loop dominates the whole
simulator — the kernel removes that floor without changing a single counter.

The accelerator is strictly optional:

* no C compiler, a failed build, or ``REPRO_NO_NATIVE=1`` in the
  environment all fall back silently to the Python loop;
* the compiled object is cached (keyed by a hash of the C source) under the
  package's ``_build`` directory when writable, else the system temp dir,
  so the one-time ``cc`` cost is paid once per machine, not per process.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import pathlib
import shutil
import subprocess
import tempfile

import numpy as np

#: Reference semantics (mirrors ``Cache.access_line``): per set, entries are
#: kept most-recently-used first; a hit moves the line to the front and ORs
#: the dirty bit with the write flag; a miss records the line, evicts the
#: least-recently-used entry of a full set (reporting its byte address when
#: dirty) and inserts the new line at the front with dirty = write flag.
_SOURCE = r"""
#include <math.h>
#include <stdint.h>
#include <string.h>

typedef int64_t i64;

/* write_mode: 0 = all reads, 1 = all writes, 2 = per-reference flags[].
   lines/dirty hold nsets*ways slots, MRU-first per set; sizes[nsets].
   counts[0] = hits, counts[1] = misses, counts[2] = dirty evictions. */
void lru_run(const i64 *stream, i64 n, int write_mode, const uint8_t *flags,
             i64 *lines, uint8_t *dirty, i64 *sizes,
             i64 nsets, i64 ways, i64 line_bytes,
             i64 *miss_lines, i64 *evictions, i64 *counts)
{
    i64 hits = 0, nm = 0, ne = 0;
    for (i64 k = 0; k < n; k++) {
        i64 line = stream[k];
        uint8_t wr = write_mode == 2 ? flags[k] : (uint8_t)write_mode;
        i64 s = nsets > 1 ? line % nsets : 0;
        i64 *L = lines + s * ways;
        uint8_t *D = dirty + s * ways;
        i64 size = sizes[s];
        i64 pos = -1;
        for (i64 i = 0; i < size; i++) {
            if (L[i] == line) { pos = i; break; }
        }
        if (pos >= 0) {
            uint8_t d = D[pos] | wr;
            hits++;
            memmove(L + 1, L, pos * sizeof(i64));
            memmove(D + 1, D, pos * sizeof(uint8_t));
            L[0] = line;
            D[0] = d;
        } else {
            miss_lines[nm++] = line;
            if (size >= ways) {
                if (D[size - 1]) evictions[ne++] = L[size - 1] * line_bytes;
                size--;
            }
            memmove(L + 1, L, size * sizeof(i64));
            memmove(D + 1, D, size * sizeof(uint8_t));
            L[0] = line;
            D[0] = wr;
            sizes[s] = size + 1;
        }
    }
    counts[0] = hits;
    counts[1] = nm;
    counts[2] = ne;
}

/* Spread the low 16 bits of x into the even bit slots (Morton helper;
   mirrors repro.util.morton's lookup-table construction). */
static uint64_t part16(uint64_t x)
{
    x &= 0xFFFFu;
    x = (x | (x << 8)) & 0x00FF00FFu;
    x = (x | (x << 4)) & 0x0F0F0F0Fu;
    x = (x | (x << 2)) & 0x33333333u;
    x = (x | (x << 1)) & 0x55555555u;
    return x;
}

/* Texture probe reference-stream generation: the whole per-draw loop of
   TextureUnit._simulate_cache in one fused pass.  Emits the L0 block
   address stream in the model's exact order — for each probe index p,
   for each mip step, the -0.5 footprint corner of every lane taking that
   (p, step), then the +0.5 corner.  All float arithmetic is plain IEEE
   double in the exact numpy evaluation order (the build must not enable
   contraction or fast-math), so addresses are bit-identical.
   Per sample: t in [-0.5, 0.5) along the anisotropy axis, position
   u + t*du; level = min(mip0 + step, max_level); texels wrap at the mip
   extents; the 4x4 block index is Morton-coded. */
void texstream(const double *u, const double *v,
               const double *du, const double *dv,
               const i64 *mip0, const i64 *probes, const i64 *mips, i64 n,
               i64 max_probes, i64 max_level, i64 width, i64 height,
               const i64 *mip_offsets, i64 n_offsets,
               i64 base_address, i64 block_bytes,
               i64 *out, i64 *out_count)
{
    i64 pos = 0;
    for (i64 p = 0; p < max_probes; p++) {
        for (i64 step = 0; step < 2; step++) {
            for (int c = 0; c < 2; c++) {
                for (i64 i = 0; i < n; i++) {
                    if (probes[i] <= p || mips[i] <= step) continue;
                    double t = ((double)p + 0.5) / (double)probes[i] - 0.5;
                    double pu = u[i] + t * du[i];
                    double pv = v[i] + t * dv[i];
                    i64 lvl = mip0[i] + step;
                    if (lvl > max_level) lvl = max_level;
                    i64 cl = lvl > 30 ? 30 : lvl;
                    double pitch = ldexp(1.0, (int)lvl);
                    double inv = 1.0 / pitch;
                    double cu = c ? 0.5 * pitch : -0.5 * pitch;
                    i64 w = width >> cl; if (w < 1) w = 1;
                    i64 h = height >> cl; if (h < 1) h = 1;
                    i64 oi = lvl < n_offsets - 1 ? lvl : n_offsets - 1;
                    i64 tx = (i64)floor((pu + cu) * inv);
                    i64 ty = (i64)floor((pv + cu) * inv);
                    if ((w & (w - 1)) == 0) { tx &= w - 1; }
                    else { tx %= w; if (tx < 0) tx += w; }
                    if ((h & (h - 1)) == 0) { ty &= h - 1; }
                    else { ty %= h; if (ty < 0) ty += h; }
                    uint64_t m = part16((uint64_t)(tx >> 2))
                               | (part16((uint64_t)(ty >> 2)) << 1);
                    out[pos++] = base_address + mip_offsets[oi]
                               + (i64)m * block_bytes;
                }
            }
        }
    }
    *out_count = pos;
}

/* Edge evaluation + coverage for candidate quads (the hot first half of
   _rasterize_tri_range).  Pixel centers are 2*cq + {0,1} + 0.5; an edge
   covers a pixel when e > 0, or e == 0 on a top-left edge.  Float order
   matches numpy: e = ((a*px) + (b*py)) + c, doubles, no contraction.
   ea/eb/ec are (T, 3) row-major, etl likewise (bytes); es is (3, n, 4),
   covered (n, 4). */
void raster_edges(const i64 *cqx, const i64 *cqy, const i64 *tri, i64 n,
                  const double *ea, const double *eb, const double *ec,
                  const uint8_t *etl,
                  double *es, uint8_t *covered)
{
    static const i64 DX[4] = {0, 1, 0, 1};
    static const i64 DY[4] = {0, 0, 1, 1};
    for (i64 i = 0; i < n; i++) {
        i64 t = tri[i];
        double px[4], py[4];
        for (int j = 0; j < 4; j++) {
            px[j] = (double)(cqx[i] * 2 + DX[j]) + 0.5;
            py[j] = (double)(cqy[i] * 2 + DY[j]) + 0.5;
        }
        uint8_t cov[4] = {1, 1, 1, 1};
        for (int k = 0; k < 3; k++) {
            double a = ea[t * 3 + k];
            double b = eb[t * 3 + k];
            double cc = ec[t * 3 + k];
            uint8_t tl = etl[t * 3 + k];
            double *ek = es + (k * n + i) * 4;
            for (int j = 0; j < 4; j++) {
                double e = (a * px[j] + b * py[j]) + cc;
                ek[j] = e;
                uint8_t inside = (e > 0.0) || (tl && e == 0.0);
                cov[j] &= inside;
            }
        }
        for (int j = 0; j < 4; j++) covered[i * 4 + j] = cov[j];
    }
}

/* Barycentric + perspective-correct attribute interpolation for the kept
   quads (the second half of _rasterize_tri_range).  Per kept quad i
   (candidate row keep_idx[i], triangle tk[i]) and lane j:
   l_k = e_k * inv_area; depth = sum(l*z) clipped to [0, 1] (numpy clip
   keeps -0.0 and NaN: only d < 0 / d > 1 reassign); 1/w interpolates
   linearly with a 1e-12 floor; u, v and the 4 color channels interpolate
   as (l*attr)*w sums over one_w — every product and sum in numpy's
   association order, plain IEEE double, no contraction. */
void raster_interp(const double *es, i64 n_cand,
                   const i64 *keep_idx, const i64 *tk, i64 nk,
                   const double *inv_area,
                   const double *zs, const double *ws,
                   const double *uvs, const double *cols,
                   double *depth, double *uv, double *col)
{
    const double *e0 = es, *e1 = es + n_cand * 4, *e2 = es + 2 * n_cand * 4;
    for (i64 i = 0; i < nk; i++) {
        i64 ci = keep_idx[i];
        i64 t = tk[i];
        double ia = inv_area[t];
        double z0 = zs[t * 3], z1 = zs[t * 3 + 1], z2 = zs[t * 3 + 2];
        double w0 = ws[t * 3], w1 = ws[t * 3 + 1], w2 = ws[t * 3 + 2];
        const double *uv0 = uvs + t * 6, *uv1 = uv0 + 2, *uv2 = uv0 + 4;
        const double *c0 = cols + t * 12, *c1 = c0 + 4, *c2 = c0 + 8;
        for (int j = 0; j < 4; j++) {
            double l0 = e0[ci * 4 + j] * ia;
            double l1 = e1[ci * 4 + j] * ia;
            double l2 = e2[ci * 4 + j] * ia;
            double d = (l0 * z0 + l1 * z1) + l2 * z2;
            if (d < 0.0) d = 0.0; else if (d > 1.0) d = 1.0;
            depth[i * 4 + j] = d;
            double ow = (l0 * w0 + l1 * w1) + l2 * w2;
            if (ow == 0.0) ow = 1e-12;
            double nu = ((l0 * uv0[0]) * w0 + (l1 * uv1[0]) * w1)
                      + (l2 * uv2[0]) * w2;
            double nv = ((l0 * uv0[1]) * w0 + (l1 * uv1[1]) * w1)
                      + (l2 * uv2[1]) * w2;
            uv[(i * 4 + j) * 2] = nu / ow;
            uv[(i * 4 + j) * 2 + 1] = nv / ow;
            for (int ch = 0; ch < 4; ch++) {
                double nc = ((l0 * c0[ch]) * w0 + (l1 * c1[ch]) * w1)
                          + (l2 * c2[ch]) * w2;
                col[(i * 4 + j) * 4 + ch] = nc / ow;
            }
        }
    }
}

/* Hierarchical-Z refresh (Framebuffer.update_hz): per listed block,
   recompute the max and min of its z tile.  NaN is sticky exactly as in
   numpy's max/min reductions (v != v admits a NaN into the running
   extreme, after which no comparison displaces it). */
void hz_update(const double *z, i64 zw, i64 block,
               const i64 *bx, const i64 *by, i64 n,
               double *hz_max, double *hz_min, i64 bw)
{
    for (i64 k = 0; k < n; k++) {
        const double *base = z + by[k] * block * zw + bx[k] * block;
        double mx = base[0], mn = base[0];
        for (i64 r = 0; r < block; r++) {
            const double *row = base + r * zw;
            for (i64 c = 0; c < block; c++) {
                double v = row[c];
                if (v > mx || v != v) mx = v;
                if (v < mn || v != v) mn = v;
            }
        }
        hz_max[by[k] * bw + bx[k]] = mx;
        hz_min[by[k] * bw + bx[k]] = mn;
    }
}

/* Color-block uniformity probe (Framebuffer.color_blocks_uniform): a block
   compresses when every pixel, clipped to [0, 1], sits within half an
   8-bit LSB of the clipped corner pixel.  The clip keeps -0.0 and NaN
   like numpy's, and the !(d < t) test rejects NaN differences exactly as
   numpy's max-then-compare does. */
void blocks_uniform(const double *color, i64 cw, i64 block,
                    const i64 *bx, const i64 *by, i64 n, uint8_t *out)
{
    const double thresh = 0.5 / 255.0;
    for (i64 k = 0; k < n; k++) {
        const double *base = color + (by[k] * block * cw + bx[k] * block) * 4;
        double c0[4];
        for (int ch = 0; ch < 4; ch++) {
            double v = base[ch];
            if (v < 0.0) v = 0.0; else if (v > 1.0) v = 1.0;
            c0[ch] = v;
        }
        uint8_t uni = 1;
        for (i64 r = 0; r < block && uni; r++) {
            const double *row = base + r * cw * 4;
            for (i64 c = 0; c < block * 4; c++) {
                double v = row[c];
                if (v < 0.0) v = 0.0; else if (v > 1.0) v = 1.0;
                double d = fabs(v - c0[c & 3]);
                if (!(d < thresh)) { uni = 0; break; }
            }
        }
        out[k] = uni;
    }
}

/* Bilinear texel fetch at one mip level (TextureUnit._bilinear inner
   loop).  Weights and accumulation follow numpy's evaluation order and
   dtype promotion exactly: texels promote to double, products associate
   as (((c*gx)*gy)), the sum left-to-right, and the final store narrows
   to float with round-to-nearest — colors are bit-identical. */
void bilinear(const float *mip, i64 h, i64 w, i64 nc,
              const double *u, const double *v, i64 n,
              i64 level, float *out)
{
    double scale = ldexp(1.0, (int)level);
    for (i64 i = 0; i < n; i++) {
        double mu = u[i] / scale - 0.5;
        double mv = v[i] / scale - 0.5;
        double x0 = floor(mu), y0 = floor(mv);
        double fx = mu - x0, fy = mv - y0;
        double gx = 1.0 - fx, gy = 1.0 - fy;
        i64 xi = (i64)x0, yi = (i64)y0;
        i64 x0w = xi % w; if (x0w < 0) x0w += w;
        i64 x1w = (xi + 1) % w; if (x1w < 0) x1w += w;
        i64 y0w = yi % h; if (y0w < 0) y0w += h;
        i64 y1w = (yi + 1) % h; if (y1w < 0) y1w += h;
        const float *p00 = mip + (y0w * w + x0w) * nc;
        const float *p10 = mip + (y0w * w + x1w) * nc;
        const float *p01 = mip + (y1w * w + x0w) * nc;
        const float *p11 = mip + (y1w * w + x1w) * nc;
        for (i64 ch = 0; ch < nc; ch++) {
            double a = ((double)p00[ch] * gx) * gy;
            double b = ((double)p10[ch] * fx) * gy;
            double cc = ((double)p01[ch] * gx) * fy;
            double d = ((double)p11[ch] * fx) * fy;
            out[i * nc + ch] = (float)(((a + b) + cc) + d);
        }
    }
}
"""

_lib: ctypes.CDLL | None = None
_tried = False

_I64P = np.ctypeslib.ndpointer(np.int64, flags="C_CONTIGUOUS")
_U8P = np.ctypeslib.ndpointer(np.uint8, flags="C_CONTIGUOUS")
_F64P = np.ctypeslib.ndpointer(np.float64, flags="C_CONTIGUOUS")
_F32P = np.ctypeslib.ndpointer(np.float32, flags="C_CONTIGUOUS")


def _cache_dirs() -> list[pathlib.Path]:
    dirs = []
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        dirs.append(pathlib.Path(override))
    dirs.append(pathlib.Path(__file__).resolve().parent / "_build")
    dirs.append(pathlib.Path(tempfile.gettempdir()) / "repro-native")
    return dirs


def _compile(so_path: pathlib.Path) -> bool:
    cc = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    if cc is None:
        return False
    try:
        so_path.parent.mkdir(parents=True, exist_ok=True)
        with tempfile.TemporaryDirectory(dir=so_path.parent) as tmp:
            src = pathlib.Path(tmp) / "lru.c"
            src.write_text(_SOURCE)
            out = pathlib.Path(tmp) / "lru.so"
            # -ffp-contract=off: the float kernels promise numpy's exact
            # IEEE results, so the compiler must not fuse multiply-adds.
            subprocess.run(
                [
                    cc, "-O2", "-ffp-contract=off", "-shared", "-fPIC",
                    str(src), "-o", str(out), "-lm",
                ],
                check=True,
                capture_output=True,
                timeout=120,
            )
            # Atomic publish: concurrent farm workers may race to build.
            os.replace(out, so_path)
        return True
    except (OSError, subprocess.SubprocessError):
        return False


def _load() -> ctypes.CDLL | None:
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    name = f"lru-{digest}.so"
    for directory in _cache_dirs():
        so_path = directory / name
        if not so_path.exists() and not _compile(so_path):
            continue
        try:
            lib = ctypes.CDLL(str(so_path))
        except OSError:
            continue
        lib.lru_run.restype = None
        lib.lru_run.argtypes = [
            _I64P, ctypes.c_int64, ctypes.c_int, ctypes.c_void_p,
            _I64P, _U8P, _I64P,
            ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
            _I64P, _I64P, _I64P,
        ]
        lib.texstream.restype = None
        lib.texstream.argtypes = [
            _F64P, _F64P, _F64P, _F64P,
            _I64P, _I64P, _I64P, ctypes.c_int64,
            ctypes.c_int64, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
            _I64P, ctypes.c_int64,
            ctypes.c_int64, ctypes.c_int64,
            _I64P, _I64P,
        ]
        lib.raster_edges.restype = None
        lib.raster_edges.argtypes = [
            _I64P, _I64P, _I64P, ctypes.c_int64,
            _F64P, _F64P, _F64P, _U8P,
            _F64P, _U8P,
        ]
        lib.raster_interp.restype = None
        lib.raster_interp.argtypes = [
            _F64P, ctypes.c_int64,
            _I64P, _I64P, ctypes.c_int64,
            _F64P,
            _F64P, _F64P, _F64P, _F64P,
            _F64P, _F64P, _F64P,
        ]
        lib.hz_update.restype = None
        lib.hz_update.argtypes = [
            _F64P, ctypes.c_int64, ctypes.c_int64,
            _I64P, _I64P, ctypes.c_int64,
            _F64P, _F64P, ctypes.c_int64,
        ]
        lib.blocks_uniform.restype = None
        lib.blocks_uniform.argtypes = [
            _F64P, ctypes.c_int64, ctypes.c_int64,
            _I64P, _I64P, ctypes.c_int64, _U8P,
        ]
        lib.bilinear.restype = None
        lib.bilinear.argtypes = [
            _F32P, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
            _F64P, _F64P, ctypes.c_int64,
            ctypes.c_int64, _F32P,
        ]
        return lib
    return None


def _fault_blocked() -> bool:
    """Whether an injected fault plan disables the native build.

    Imported lazily: this module is loaded early in the ``repro.gpu``
    import chain, and the fault layer lives in ``repro.farm`` — a runtime
    import here keeps the module graph acyclic.
    """
    if "REPRO_FAULTS" not in os.environ:
        return False
    try:
        from repro.farm.faults import native_compile_fault

        return native_compile_fault()
    except Exception:
        return False


def _reset() -> None:
    """Forget the cached probe so the next :func:`available` re-evaluates.

    Used by the fault-injection layer (forked pool workers inherit the
    parent's probe result) and by tests.
    """
    global _lib, _tried
    _lib = None
    _tried = False


def available() -> bool:
    """Whether the compiled kernel can be used (lazy one-time build)."""
    global _lib, _tried
    if not _tried:
        _tried = True
        if os.environ.get("REPRO_NO_NATIVE") or _fault_blocked():
            _lib = None
        else:
            _lib = _load()
    return _lib is not None


def lru_run(
    stream: np.ndarray,
    write_mode: int,
    flags: np.ndarray | None,
    lines: np.ndarray,
    dirty: np.ndarray,
    sizes: np.ndarray,
    nsets: int,
    ways: int,
    line_bytes: int,
    miss_buf: np.ndarray,
    evict_buf: np.ndarray,
) -> tuple[int, np.ndarray, np.ndarray]:
    """Run the kernel in place over ``lines``/``dirty``/``sizes``.

    Returns ``(hits, miss_lines, dirty_eviction_addrs)``; the state arrays
    are updated to the post-stream LRU contents.  ``miss_buf``/``evict_buf``
    are caller-owned scratch arrays of at least ``len(stream)`` entries; the
    returned arrays are trimmed copies.
    """
    n = stream.shape[0]
    counts = np.zeros(3, dtype=np.int64)
    if flags is None:
        flags_ptr = None
    else:
        flags_ptr = flags.ctypes.data_as(ctypes.c_void_p)
    _lib.lru_run(
        stream, n, write_mode, flags_ptr,
        lines, dirty, sizes,
        nsets, ways, line_bytes,
        miss_buf, evict_buf, counts,
    )
    hits, misses, evictions = (int(v) for v in counts)
    return hits, miss_buf[:misses].copy(), evict_buf[:evictions].copy()


def texstream(
    u: np.ndarray,
    v: np.ndarray,
    du: np.ndarray,
    dv: np.ndarray,
    mip0: np.ndarray,
    probes: np.ndarray,
    mips: np.ndarray,
    max_probes: int,
    max_level: int,
    width: int,
    height: int,
    mip_offsets: np.ndarray,
    base_address: int,
    block_bytes: int,
    out: np.ndarray,
) -> int:
    """Fill ``out`` with the L0 block-address stream; returns its length."""
    count = np.zeros(1, dtype=np.int64)
    _lib.texstream(
        u, v, du, dv,
        mip0, probes, mips, u.shape[0],
        max_probes, max_level, width, height,
        mip_offsets, mip_offsets.shape[0],
        base_address, block_bytes,
        out, count,
    )
    return int(count[0])


def raster_edges(
    cqx: np.ndarray,
    cqy: np.ndarray,
    tri: np.ndarray,
    ea: np.ndarray,
    eb: np.ndarray,
    ec: np.ndarray,
    etl: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Edge values (3, n, 4) and coverage mask (n, 4) for candidate quads."""
    n = cqx.shape[0]
    es = np.empty((3, n, 4), dtype=np.float64)
    covered = np.empty((n, 4), dtype=np.uint8)
    _lib.raster_edges(cqx, cqy, tri, n, ea, eb, ec, etl, es, covered)
    return es, covered


def raster_interp(
    es: np.ndarray,
    keep_idx: np.ndarray,
    tk: np.ndarray,
    inv_area: np.ndarray,
    zs: np.ndarray,
    ws: np.ndarray,
    uvs: np.ndarray,
    cols: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Depth (K, 4), uv (K, 4, 2) and color (K, 4, 4) for the kept quads."""
    nk = keep_idx.shape[0]
    depth = np.empty((nk, 4), dtype=np.float64)
    uv = np.empty((nk, 4, 2), dtype=np.float64)
    col = np.empty((nk, 4, 4), dtype=np.float64)
    _lib.raster_interp(
        es, es.shape[1], keep_idx, tk, nk,
        inv_area, zs, ws, uvs, cols,
        depth, uv, col,
    )
    return depth, uv, col


def hz_update(
    z: np.ndarray,
    block: int,
    bx: np.ndarray,
    by: np.ndarray,
    hz_max: np.ndarray,
    hz_min: np.ndarray,
) -> None:
    """Refresh ``hz_max``/``hz_min`` in place for the listed blocks."""
    _lib.hz_update(
        z, z.shape[1], block, bx, by, bx.shape[0],
        hz_max, hz_min, hz_max.shape[1],
    )


def blocks_uniform(
    color: np.ndarray,
    block: int,
    bx: np.ndarray,
    by: np.ndarray,
) -> np.ndarray:
    """Uniformity flags (uint8) for the listed color blocks."""
    out = np.empty(bx.shape[0], dtype=np.uint8)
    _lib.blocks_uniform(
        color, color.shape[1], block, bx, by, bx.shape[0], out,
    )
    return out


def bilinear(
    mip: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
    level: int,
    out: np.ndarray,
) -> None:
    """Bilinear fetch from one (h, w, c) float32 mip into ``out``."""
    h, w, nc = mip.shape
    _lib.bilinear(mip, h, w, nc, u, v, u.shape[0], level, out)
