"""Optional C-accelerated LRU kernel for :class:`repro.gpu.caches.Cache`.

The pure-Python loop in ``caches.py`` remains the reference implementation;
this module compiles the exact same set-associative LRU walk to a tiny
shared object with the system C compiler and loads it through :mod:`ctypes`.
Draw-level QuadStream batching hands the cache model reference streams of
millions of lines per call, where the interpreted loop dominates the whole
simulator — the kernel removes that floor without changing a single counter.

The accelerator is strictly optional:

* no C compiler, a failed build, or ``REPRO_NO_NATIVE=1`` in the
  environment all fall back silently to the Python loop;
* the compiled object is cached (keyed by a hash of the C source) under the
  package's ``_build`` directory when writable, else the system temp dir,
  so the one-time ``cc`` cost is paid once per machine, not per process.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import pathlib
import shutil
import subprocess
import tempfile

import numpy as np

#: Reference semantics (mirrors ``Cache.access_line``): per set, entries are
#: kept most-recently-used first; a hit moves the line to the front and ORs
#: the dirty bit with the write flag; a miss records the line, evicts the
#: least-recently-used entry of a full set (reporting its byte address when
#: dirty) and inserts the new line at the front with dirty = write flag.
_SOURCE = r"""
#include <math.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

typedef int64_t i64;

/* write_mode: 0 = all reads, 1 = all writes, 2 = per-reference flags[].
   lines/dirty hold nsets*ways slots, MRU-first per set; sizes[nsets].
   counts[0] = hits, counts[1] = misses, counts[2] = dirty evictions. */
void lru_run(const i64 *stream, i64 n, int write_mode, const uint8_t *flags,
             i64 *lines, uint8_t *dirty, i64 *sizes,
             i64 nsets, i64 ways, i64 line_bytes,
             i64 *miss_lines, i64 *evictions, i64 *counts)
{
    i64 hits = 0, nm = 0, ne = 0;
    for (i64 k = 0; k < n; k++) {
        i64 line = stream[k];
        uint8_t wr = write_mode == 2 ? flags[k] : (uint8_t)write_mode;
        i64 s = nsets > 1 ? line % nsets : 0;
        i64 *L = lines + s * ways;
        uint8_t *D = dirty + s * ways;
        i64 size = sizes[s];
        if (size > 0 && L[0] == line) {  /* MRU hit: the memmoves are no-ops */
            hits++;
            D[0] |= wr;
            continue;
        }
        i64 pos = -1;
        for (i64 i = 0; i < size; i++) {
            if (L[i] == line) { pos = i; break; }
        }
        if (pos >= 0) {
            uint8_t d = D[pos] | wr;
            hits++;
            memmove(L + 1, L, pos * sizeof(i64));
            memmove(D + 1, D, pos * sizeof(uint8_t));
            L[0] = line;
            D[0] = d;
        } else {
            miss_lines[nm++] = line;
            if (size >= ways) {
                if (D[size - 1]) evictions[ne++] = L[size - 1] * line_bytes;
                size--;
            }
            memmove(L + 1, L, size * sizeof(i64));
            memmove(D + 1, D, size * sizeof(uint8_t));
            L[0] = line;
            D[0] = wr;
            sizes[s] = size + 1;
        }
    }
    counts[0] = hits;
    counts[1] = nm;
    counts[2] = ne;
}

/* Spread the low 16 bits of x into the even bit slots (Morton helper;
   mirrors repro.util.morton's lookup-table construction). */
static uint64_t part16(uint64_t x)
{
    x &= 0xFFFFu;
    x = (x | (x << 8)) & 0x00FF00FFu;
    x = (x | (x << 4)) & 0x0F0F0F0Fu;
    x = (x | (x << 2)) & 0x33333333u;
    x = (x | (x << 1)) & 0x55555555u;
    return x;
}

/* One set-associative LRU access (Cache.access_line with a fixed write
   flag), shared by the fused stage kernels.  Returns 1 on hit.  On a miss
   the LRU victim of a full set is dropped; *evicted is set to its byte
   address when it was dirty, else left untouched. */
static int lru_touch(i64 line, int wr, i64 *lines, uint8_t *dirty,
                     i64 *sizes, i64 nsets, i64 ways, i64 line_bytes,
                     i64 *evicted)
{
    i64 s = nsets > 1 ? line % nsets : 0;
    i64 *L = lines + s * ways;
    uint8_t *D = dirty + s * ways;
    i64 size = sizes[s];
    if (size > 0 && L[0] == line) {      /* MRU hit: the memmoves are no-ops */
        D[0] |= (uint8_t)wr;
        return 1;
    }
    for (i64 i = 0; i < size; i++) {
        if (L[i] == line) {
            uint8_t d = D[i] | (uint8_t)wr;
            memmove(L + 1, L, i * sizeof(i64));
            memmove(D + 1, D, i * sizeof(uint8_t));
            L[0] = line;
            D[0] = d;
            return 1;
        }
    }
    if (size >= ways) {
        if (D[size - 1]) *evicted = L[size - 1] * line_bytes;
        size--;
    }
    memmove(L + 1, L, size * sizeof(i64));
    memmove(D + 1, D, size * sizeof(uint8_t));
    L[0] = line;
    D[0] = (uint8_t)wr;
    sizes[s] = size + 1;
    return 0;
}

/* Stamp-based LRU mirror for the fused texture walk below.  The reference
   model keeps each set's lines MRU-first and memmoves on every touch —
   O(ways) per access, which dominates once a frame issues tens of
   millions of texture probes.  The mirror stores a monotonically
   increasing recency stamp per way instead and finds lines through an
   open-addressing hash (multiplicative hashing, linear probing,
   backshift deletion), making a hit O(1).  Stamps are a total order over
   touches, so "evict the minimum stamp in the set" is exactly the
   reference's evict-the-tail, and sorting a set's ways by descending
   stamp rebuilds the reference's MRU-first export layout bit for bit.
   Texture streams never write, so the dirty array is never touched and
   (being all-clear for a read-only cache) needs no reordering. */
enum { TC_SLOTS = 4096, TC_HASH = 16384 };

typedef struct {
    i64 *wline;        /* line per way slot, nsets*ways */
    uint64_t *wstamp;  /* recency stamp per way slot */
    i64 *sizes;        /* per-set fill counts (the caller's array, in place) */
    i64 *hkey;         /* open-addressing hash: line -> way slot */
    int32_t *hval;
    i64 hmask;
    i64 nsets, ways;
    uint64_t ctr;
} stampcache;

static inline i64 tc_hash(const stampcache *C, i64 line)
{
    return (i64)(((uint64_t)line * 0x9E3779B97F4A7C15ull) >> 32) & C->hmask;
}

static void tc_init(stampcache *C, i64 *wline, uint64_t *wstamp,
                    i64 *hkey, int32_t *hval, i64 hcap,
                    const i64 *lines, i64 *sizes, i64 nsets, i64 ways)
{
    C->wline = wline;
    C->wstamp = wstamp;
    C->sizes = sizes;
    C->hkey = hkey;
    C->hval = hval;
    C->hmask = hcap - 1;
    C->nsets = nsets;
    C->ways = ways;
    /* Initial stamps are 1..size per set (MRU-first input, index 0 is the
       newest); starting the counter at ways keeps every future touch
       strictly newer than every imported line. */
    C->ctr = (uint64_t)ways;
    for (i64 i = 0; i < hcap; i++) hkey[i] = -1;
    for (i64 s = 0; s < nsets; s++) {
        i64 size = sizes[s];
        for (i64 i = 0; i < size; i++) {
            i64 slot = s * ways + i;
            i64 line = lines[slot];
            wline[slot] = line;
            wstamp[slot] = (uint64_t)(size - i);
            i64 h = tc_hash(C, line);
            while (hkey[h] != -1) h = (h + 1) & C->hmask;
            hkey[h] = line;
            hval[h] = (int32_t)slot;
        }
    }
}

static void tc_hdel(stampcache *C, i64 line)
{
    i64 mask = C->hmask;
    i64 pos = tc_hash(C, line);
    while (C->hkey[pos] != line) pos = (pos + 1) & mask;
    i64 hole = pos;
    i64 j = (pos + 1) & mask;
    while (C->hkey[j] != -1) {          /* backshift deletion */
        i64 home = tc_hash(C, C->hkey[j]);
        if (((j - home) & mask) >= ((j - hole) & mask)) {
            C->hkey[hole] = C->hkey[j];
            C->hval[hole] = C->hval[j];
            hole = j;
        }
        j = (j + 1) & mask;
    }
    C->hkey[hole] = -1;
}

/* One read access; returns 1 on hit.  Mirrors lru_touch for a
   never-written stream: dirty state cannot change and evictions never
   write back. */
static int tc_access(stampcache *C, i64 line)
{
    i64 mask = C->hmask;
    i64 h = tc_hash(C, line);
    while (C->hkey[h] != -1) {
        if (C->hkey[h] == line) {
            C->wstamp[C->hval[h]] = ++C->ctr;
            return 1;
        }
        h = (h + 1) & mask;
    }
    i64 s = C->nsets > 1 ? line % C->nsets : 0;
    i64 base = s * C->ways;
    i64 slot;
    if (C->sizes[s] < C->ways) {
        slot = base + C->sizes[s]++;
    } else {
        slot = base;
        uint64_t mn = C->wstamp[base];
        for (i64 i = 1; i < C->ways; i++)
            if (C->wstamp[base + i] < mn) {
                mn = C->wstamp[base + i];
                slot = base + i;
            }
        tc_hdel(C, C->wline[slot]);
        h = tc_hash(C, line);           /* the hole may have moved */
        while (C->hkey[h] != -1) h = (h + 1) & mask;
    }
    C->hkey[h] = line;
    C->hval[h] = (int32_t)slot;
    C->wline[slot] = line;
    C->wstamp[slot] = ++C->ctr;
    return 0;
}

/* Write the mirror back as the reference's MRU-first per-set layout. */
static void tc_export(stampcache *C, i64 *lines)
{
    for (i64 s = 0; s < C->nsets; s++) {
        i64 base = s * C->ways, size = C->sizes[s];
        for (i64 i = 0; i < size; i++) {   /* selection sort; ways are small */
            i64 best = i;
            for (i64 j = i + 1; j < size; j++)
                if (C->wstamp[base + j] > C->wstamp[base + best]) best = j;
            if (best != i) {
                i64 tl = C->wline[base + i];
                uint64_t ts = C->wstamp[base + i];
                C->wline[base + i] = C->wline[base + best];
                C->wstamp[base + i] = C->wstamp[base + best];
                C->wline[base + best] = tl;
                C->wstamp[base + best] = ts;
            }
            lines[base + i] = C->wline[base + i];
        }
    }
}

/* Fused texture-request pass: the whole per-draw loop of
   TextureUnit._simulate_cache — probe-address generation, the L0 LRU walk,
   and the L1 walk of the L0 miss stream — in one call with no
   materialized address stream.  Addresses are emitted in the model's
   exact order: for each probe index p, for each mip step, the -0.5
   footprint corner of every lane taking that (p, step), then the +0.5
   corner.  All float arithmetic is plain IEEE double in the exact numpy
   evaluation order (the build must not enable contraction or fast-math),
   so addresses are bit-identical.  Per sample: t in [-0.5, 0.5) along the
   anisotropy axis, position u + t*du; level = min(mip0 + step, max_level);
   texels wrap at the mip extents; the 4x4 block index is Morton-coded.
   The collapse passes Cache.access_stream applies first (duplicate-run
   and period-2 alternation folding) are exact no-ops on hit/miss totals
   and LRU state, so the raw inline walk reproduces their counters bit for
   bit; interleaving each L0 miss's L1 access into the walk is equally
   neutral because the two caches share no state.  Texture streams never
   write, so dirty evictions cannot occur — which is what lets both walks
   run on the stamp-based LRU mirror above (imported up front, exported
   back to MRU-first order at the end) instead of the memmove list.
   bucket is caller scratch of at least sum(probes) entries: lanes are
   bucketed per probe index up front (ascending lane order within each
   bucket) so the sweep never scans lanes that emit nothing.
   counts: emitted, l0 hits, l0 misses, l1 hits, l1 misses; counts[0] = -1
   means max_probes or a cache geometry exceeded the kernel bounds and
   nothing was touched. */
void texcache(const double *u, const double *v,
              const double *du, const double *dv,
              const i64 *mip0, const i64 *probes, const i64 *mips, i64 n,
              i64 max_probes, i64 max_level, i64 width, i64 height,
              const i64 *mip_offsets, i64 n_offsets,
              i64 base_address, i64 block_bytes,
              i64 *bucket,
              i64 *l0_lines, uint8_t *l0_dirty, i64 *l0_sizes,
              i64 l0_nsets, i64 l0_ways,
              i64 *l1_lines, uint8_t *l1_dirty, i64 *l1_sizes,
              i64 l1_nsets, i64 l1_ways,
              i64 l1_line_bytes,
              i64 *counts)
{
    enum { MAXP = 64 };
    i64 bcount[MAXP], boff[MAXP + 1], cur[MAXP];
    i64 l0_slots = l0_nsets * l0_ways, l1_slots = l1_nsets * l1_ways;
    if (max_probes > MAXP || l0_slots > TC_SLOTS || l1_slots > TC_SLOTS) {
        counts[0] = -1;
        return;
    }
    (void)l0_dirty;
    (void)l1_dirty;
    i64 wline0[TC_SLOTS], wline1[TC_SLOTS];
    uint64_t wstamp0[TC_SLOTS], wstamp1[TC_SLOTS];
    i64 hkey0[TC_HASH], hkey1[TC_HASH];
    int32_t hval0[TC_HASH], hval1[TC_HASH];
    i64 hcap0 = 64, hcap1 = 64;
    while (hcap0 < 4 * l0_slots) hcap0 <<= 1;
    while (hcap1 < 4 * l1_slots) hcap1 <<= 1;
    /* Hoisted per-(lane, step) mip constants — lvl, pitch and extents
       depend only on the lane's base level and the step, not on the probe
       or corner, so computing them per emission wastes most of the walk.
       hoff folds base_address + mip_offsets[oi] into one addend.  hinv
       and hhp (0.5 * pitch; the - corner negates it, which is exact) feed
       the identical float expressions, so addresses are unchanged. */
    double *scratch = malloc((size_t)n * 6 * sizeof(double));
    if (scratch == NULL) { counts[0] = -1; return; }
    double *hinv = scratch;            /* n*2 */
    double *hhp = scratch + n * 2;     /* n*2 */
    double *tpu = scratch + n * 4;     /* n: per-probe sample u */
    double *tpv = scratch + n * 5;     /* n: per-probe sample v */
    i64 *iscratch = malloc((size_t)n * 6 * sizeof(i64));
    if (iscratch == NULL) { free(scratch); counts[0] = -1; return; }
    i64 *hw = iscratch;                /* n*2 */
    i64 *hh = iscratch + n * 2;        /* n*2 */
    i64 *hoff = iscratch + n * 4;      /* n*2 */
    for (i64 i = 0; i < n; i++) {
        for (i64 step = 0; step < 2 && step < mips[i]; step++) {
            i64 lvl = mip0[i] + step;
            if (lvl > max_level) lvl = max_level;
            i64 cl = lvl > 30 ? 30 : lvl;
            double pitch = ldexp(1.0, (int)lvl);
            i64 w = width >> cl; if (w < 1) w = 1;
            i64 h = height >> cl; if (h < 1) h = 1;
            i64 oi = lvl < n_offsets - 1 ? lvl : n_offsets - 1;
            hinv[i * 2 + step] = 1.0 / pitch;
            hhp[i * 2 + step] = 0.5 * pitch;
            hw[i * 2 + step] = w;
            hh[i * 2 + step] = h;
            hoff[i * 2 + step] = base_address + mip_offsets[oi];
        }
    }
    /* addr / block_bytes is a shift when block_bytes is a power of two
       (addresses are nonnegative, so the shift is the exact quotient). */
    i64 bshift = -1;
    if (block_bytes > 0 && (block_bytes & (block_bytes - 1)) == 0) {
        bshift = 0;
        while ((i64)1 << bshift != block_bytes) bshift++;
    }
    stampcache C0, C1;
    tc_init(&C0, wline0, wstamp0, hkey0, hval0, hcap0,
            l0_lines, l0_sizes, l0_nsets, l0_ways);
    tc_init(&C1, wline1, wstamp1, hkey1, hval1, hcap1,
            l1_lines, l1_sizes, l1_nsets, l1_ways);
    for (i64 p = 0; p < max_probes; p++) bcount[p] = 0;
    for (i64 i = 0; i < n; i++)
        for (i64 p = 0; p < probes[i]; p++) bcount[p]++;
    boff[0] = 0;
    for (i64 p = 0; p < max_probes; p++) boff[p + 1] = boff[p] + bcount[p];
    for (i64 p = 0; p < max_probes; p++) cur[p] = boff[p];
    for (i64 i = 0; i < n; i++)
        for (i64 p = 0; p < probes[i]; p++) bucket[cur[p]++] = i;
    i64 emitted = 0, l0h = 0, l0m = 0, l1h = 0, l1m = 0;
    for (i64 p = 0; p < max_probes; p++) {
        const i64 *B = bucket + boff[p];
        i64 bn = bcount[p];
        /* The sample position depends on (probe, lane) only — compute it
           once per probe instead of once per (step, corner) emission. */
        for (i64 k = 0; k < bn; k++) {
            i64 i = B[k];
            double t = ((double)p + 0.5) / (double)probes[i] - 0.5;
            tpu[i] = u[i] + t * du[i];
            tpv[i] = v[i] + t * dv[i];
        }
        for (i64 step = 0; step < 2; step++) {
            for (int c = 0; c < 2; c++) {
                for (i64 k = 0; k < bn; k++) {
                    i64 i = B[k];
                    if (mips[i] <= step) continue;
                    i64 is = i * 2 + step;
                    double inv = hinv[is];
                    double cu = c ? hhp[is] : -hhp[is];
                    i64 w = hw[is], h = hh[is];
                    i64 tx = (i64)floor((tpu[i] + cu) * inv);
                    i64 ty = (i64)floor((tpv[i] + cu) * inv);
                    if ((w & (w - 1)) == 0) { tx &= w - 1; }
                    else { tx %= w; if (tx < 0) tx += w; }
                    if ((h & (h - 1)) == 0) { ty &= h - 1; }
                    else { ty %= h; if (ty < 0) ty += h; }
                    uint64_t m = part16((uint64_t)(tx >> 2))
                               | (part16((uint64_t)(ty >> 2)) << 1);
                    i64 addr = hoff[is] + (i64)m * block_bytes;
                    i64 l0_line = bshift >= 0 ? addr >> bshift
                                              : addr / block_bytes;
                    emitted++;
                    if (tc_access(&C0, l0_line)) {
                        l0h++;
                    } else {
                        l0m++;
                        i64 l1_line = (l0_line * block_bytes) / l1_line_bytes;
                        if (tc_access(&C1, l1_line))
                            l1h++;
                        else
                            l1m++;
                    }
                }
            }
        }
    }
    free(scratch);
    free(iscratch);
    tc_export(&C0, l0_lines);
    tc_export(&C1, l1_lines);
    counts[0] = emitted;
    counts[1] = l0h;
    counts[2] = l0m;
    counts[3] = l1h;
    counts[4] = l1m;
}

/* Edge evaluation + coverage for candidate quads (the hot first half of
   _rasterize_tri_range).  Pixel centers are 2*cq + {0,1} + 0.5; an edge
   covers a pixel when e > 0, or e == 0 on a top-left edge.  Float order
   matches numpy: e = ((a*px) + (b*py)) + c, doubles, no contraction.
   ea/eb/ec are (T, 3) row-major, etl likewise (bytes); es is (3, n, 4),
   covered (n, 4). */
void raster_edges(const i64 *cqx, const i64 *cqy, const i64 *tri, i64 n,
                  const double *ea, const double *eb, const double *ec,
                  const uint8_t *etl,
                  double *es, uint8_t *covered)
{
    static const i64 DX[4] = {0, 1, 0, 1};
    static const i64 DY[4] = {0, 0, 1, 1};
    for (i64 i = 0; i < n; i++) {
        i64 t = tri[i];
        double px[4], py[4];
        for (int j = 0; j < 4; j++) {
            px[j] = (double)(cqx[i] * 2 + DX[j]) + 0.5;
            py[j] = (double)(cqy[i] * 2 + DY[j]) + 0.5;
        }
        uint8_t cov[4] = {1, 1, 1, 1};
        for (int k = 0; k < 3; k++) {
            double a = ea[t * 3 + k];
            double b = eb[t * 3 + k];
            double cc = ec[t * 3 + k];
            uint8_t tl = etl[t * 3 + k];
            double *ek = es + (k * n + i) * 4;
            for (int j = 0; j < 4; j++) {
                double e = (a * px[j] + b * py[j]) + cc;
                ek[j] = e;
                uint8_t inside = (e > 0.0) || (tl && e == 0.0);
                cov[j] &= inside;
            }
        }
        for (int j = 0; j < 4; j++) covered[i * 4 + j] = cov[j];
    }
}

/* Barycentric + perspective-correct attribute interpolation for the kept
   quads (the second half of _rasterize_tri_range).  Per kept quad i
   (candidate row keep_idx[i], triangle tk[i]) and lane j:
   l_k = e_k * inv_area; depth = sum(l*z) clipped to [0, 1] (numpy clip
   keeps -0.0 and NaN: only d < 0 / d > 1 reassign); 1/w interpolates
   linearly with a 1e-12 floor; u, v and the 4 color channels interpolate
   as (l*attr)*w sums over one_w — every product and sum in numpy's
   association order, plain IEEE double, no contraction. */
void raster_interp(const double *es, i64 n_cand,
                   const i64 *keep_idx, const i64 *tk, i64 nk,
                   const double *inv_area,
                   const double *zs, const double *ws,
                   const double *uvs, const double *cols,
                   double *depth, double *uv, double *col)
{
    const double *e0 = es, *e1 = es + n_cand * 4, *e2 = es + 2 * n_cand * 4;
    for (i64 i = 0; i < nk; i++) {
        i64 ci = keep_idx[i];
        i64 t = tk[i];
        double ia = inv_area[t];
        double z0 = zs[t * 3], z1 = zs[t * 3 + 1], z2 = zs[t * 3 + 2];
        double w0 = ws[t * 3], w1 = ws[t * 3 + 1], w2 = ws[t * 3 + 2];
        const double *uv0 = uvs + t * 6, *uv1 = uv0 + 2, *uv2 = uv0 + 4;
        const double *c0 = cols + t * 12, *c1 = c0 + 4, *c2 = c0 + 8;
        for (int j = 0; j < 4; j++) {
            double l0 = e0[ci * 4 + j] * ia;
            double l1 = e1[ci * 4 + j] * ia;
            double l2 = e2[ci * 4 + j] * ia;
            double d = (l0 * z0 + l1 * z1) + l2 * z2;
            if (d < 0.0) d = 0.0; else if (d > 1.0) d = 1.0;
            depth[i * 4 + j] = d;
            double ow = (l0 * w0 + l1 * w1) + l2 * w2;
            if (ow == 0.0) ow = 1e-12;
            double nu = ((l0 * uv0[0]) * w0 + (l1 * uv1[0]) * w1)
                      + (l2 * uv2[0]) * w2;
            double nv = ((l0 * uv0[1]) * w0 + (l1 * uv1[1]) * w1)
                      + (l2 * uv2[1]) * w2;
            uv[(i * 4 + j) * 2] = nu / ow;
            uv[(i * 4 + j) * 2 + 1] = nv / ow;
            for (int ch = 0; ch < 4; ch++) {
                double nc = ((l0 * c0[ch]) * w0 + (l1 * c1[ch]) * w1)
                          + (l2 * c2[ch]) * w2;
                col[(i * 4 + j) * 4 + ch] = nc / ow;
            }
        }
    }
}

/* Hierarchical-Z refresh (Framebuffer.update_hz): per listed block,
   recompute the max and min of its z tile.  NaN is sticky exactly as in
   numpy's max/min reductions (v != v admits a NaN into the running
   extreme, after which no comparison displaces it). */
void hz_update(const double *z, i64 zw, i64 block,
               const i64 *bx, const i64 *by, i64 n,
               double *hz_max, double *hz_min, i64 bw)
{
    for (i64 k = 0; k < n; k++) {
        const double *base = z + by[k] * block * zw + bx[k] * block;
        double mx = base[0], mn = base[0];
        for (i64 r = 0; r < block; r++) {
            const double *row = base + r * zw;
            for (i64 c = 0; c < block; c++) {
                double v = row[c];
                if (v > mx || v != v) mx = v;
                if (v < mn || v != v) mn = v;
            }
        }
        hz_max[by[k] * bw + bx[k]] = mx;
        hz_min[by[k] * bw + bx[k]] = mn;
    }
}

/* Color-block uniformity probe (Framebuffer.color_blocks_uniform): a block
   compresses when every pixel, clipped to [0, 1], sits within half an
   8-bit LSB of the clipped corner pixel.  The clip keeps -0.0 and NaN
   like numpy's, and the !(d < t) test rejects NaN differences exactly as
   numpy's max-then-compare does. */
void blocks_uniform(const double *color, i64 cw, i64 block,
                    const i64 *bx, const i64 *by, i64 n, uint8_t *out)
{
    const double thresh = 0.5 / 255.0;
    for (i64 k = 0; k < n; k++) {
        const double *base = color + (by[k] * block * cw + bx[k] * block) * 4;
        double c0[4];
        for (int ch = 0; ch < 4; ch++) {
            double v = base[ch];
            if (v < 0.0) v = 0.0; else if (v > 1.0) v = 1.0;
            c0[ch] = v;
        }
        uint8_t uni = 1;
        for (i64 r = 0; r < block && uni; r++) {
            const double *row = base + r * cw * 4;
            for (i64 c = 0; c < block * 4; c++) {
                double v = row[c];
                if (v < 0.0) v = 0.0; else if (v > 1.0) v = 1.0;
                double d = fabs(v - c0[c & 3]);
                if (!(d < thresh)) { uni = 0; break; }
            }
        }
        out[k] = uni;
    }
}

/* Bilinear texel fetch at one mip level (TextureUnit._bilinear inner
   loop).  Weights and accumulation follow numpy's evaluation order and
   dtype promotion exactly: texels promote to double, products associate
   as (((c*gx)*gy)), the sum left-to-right, and the final store narrows
   to float with round-to-nearest — colors are bit-identical. */
void bilinear(const float *mip, i64 h, i64 w, i64 nc,
              const double *u, const double *v, i64 n,
              i64 level, float *out)
{
    double scale = ldexp(1.0, (int)level);
    for (i64 i = 0; i < n; i++) {
        double mu = u[i] / scale - 0.5;
        double mv = v[i] / scale - 0.5;
        double x0 = floor(mu), y0 = floor(mv);
        double fx = mu - x0, fy = mv - y0;
        double gx = 1.0 - fx, gy = 1.0 - fy;
        i64 xi = (i64)x0, yi = (i64)y0;
        i64 x0w = xi % w; if (x0w < 0) x0w += w;
        i64 x1w = (xi + 1) % w; if (x1w < 0) x1w += w;
        i64 y0w = yi % h; if (y0w < 0) y0w += h;
        i64 y1w = (yi + 1) % h; if (y1w < 0) y1w += h;
        const float *p00 = mip + (y0w * w + x0w) * nc;
        const float *p10 = mip + (y0w * w + x1w) * nc;
        const float *p01 = mip + (y1w * w + x0w) * nc;
        const float *p11 = mip + (y1w * w + x1w) * nc;
        for (i64 ch = 0; ch < nc; ch++) {
            double a = ((double)p00[ch] * gx) * gy;
            double b = ((double)p10[ch] * fx) * gy;
            double cc = ((double)p01[ch] * gx) * fy;
            double d = ((double)p11[ch] * fx) * fy;
            out[i * nc + ch] = (float)(((a + b) + cc) + d);
        }
    }
}

/* Multi-level bilinear fetch: TextureUnit._bilinear's per-unique-level
   loop in one pass over a flattened mip chain.  flat holds every RGBA
   float32 mip concatenated; offs[l]/hs[l]/ws[l] give mip l's texel offset
   and extents.  Each lane's math is the bilinear kernel above verbatim
   (lanes are independent, so fusing the levels changes nothing). */
void bilinear_levels(const float *flat, const i64 *offs,
                     const i64 *hs, const i64 *ws, i64 nlevels,
                     const double *u, const double *v,
                     const i64 *mip0, i64 n, float *out)
{
    for (i64 i = 0; i < n; i++) {
        i64 level = mip0[i];
        if (level < 0) level = 0;
        if (level >= nlevels) level = nlevels - 1;
        const float *mip = flat + offs[level] * 4;
        i64 h = hs[level], w = ws[level];
        double scale = ldexp(1.0, (int)level);
        double mu = u[i] / scale - 0.5;
        double mv = v[i] / scale - 0.5;
        double x0 = floor(mu), y0 = floor(mv);
        double fx = mu - x0, fy = mv - y0;
        double gx = 1.0 - fx, gy = 1.0 - fy;
        i64 xi = (i64)x0, yi = (i64)y0;
        i64 x0w = xi % w; if (x0w < 0) x0w += w;
        i64 x1w = (xi + 1) % w; if (x1w < 0) x1w += w;
        i64 y0w = yi % h; if (y0w < 0) y0w += h;
        i64 y1w = (yi + 1) % h; if (y1w < 0) y1w += h;
        const float *p00 = mip + (y0w * w + x0w) * 4;
        const float *p10 = mip + (y0w * w + x1w) * 4;
        const float *p01 = mip + (y1w * w + x0w) * 4;
        const float *p11 = mip + (y1w * w + x1w) * 4;
        for (i64 ch = 0; ch < 4; ch++) {
            double a = ((double)p00[ch] * gx) * gy;
            double b = ((double)p10[ch] * fx) * gy;
            double cc = ((double)p01[ch] * gx) * fy;
            double d = ((double)p11[ch] * fx) * fy;
            out[i * 4 + ch] = (float)(((a + b) + cc) + d);
        }
    }
}

/* Fused color stage over a shaded stream's per-triangle groups:
   ColorStage.process called once per group, in one pass.  Per group, in
   order: skip entirely when no lane is live (process's write_mask.any()
   gate — no blending, no accounting); blend live lanes into the color
   plane in flattened lane order (replace = last write wins; add =
   accumulate all, then clip touched pixels — the clip keeps -0.0 and NaN
   like np.clip; modulate = sequential multiply, no clip; alpha =
   sequential a*src + (1-a)*dst per lane); then run every quad of the
   group through the color cache (write=true).  Miss fill bytes read the
   block state inline — states mutate only at group end, so this matches
   the batched path's read-after-walk.  Dirty evictions are deferred to
   the group end (an evicted line can re-miss within the same group and
   must still see the pre-group state), then each one probes block
   uniformity from the settled color plane, adds half or full line bytes,
   and sets the block state, in eviction order.  escratch is caller
   scratch of at least nquads entries.  xs/ys lane 0 of a quad is exactly
   (2*qx, 2*qy), which the block coordinates derive from.
   counts: accesses, hits, misses, read bytes, write bytes. */
void colorpass(const i64 *xs, const i64 *ys, const double *colors,
               const uint8_t *live, i64 nquads,
               const i64 *starts, const i64 *ends, i64 ngroups,
               i64 blend_mode,
               double *fbcolor, i64 cw,
               uint8_t *block_state, i64 block, i64 blocks_x,
               i64 *c_lines, uint8_t *c_dirty, i64 *c_sizes,
               i64 nsets, i64 ways, i64 line_bytes,
               i64 compression, i64 fast_clear,
               i64 *escratch, i64 *counts)
{
    const double thresh = 0.5 / 255.0;
    i64 acc = 0, hits = 0, misses = 0, rbytes = 0, wbytes = 0;
    for (i64 g = 0; g < ngroups; g++) {
        i64 s = starts[g], e = ends[g];
        int any = 0;
        for (i64 q = s; q < e && !any; q++)
            for (int l = 0; l < 4; l++)
                if (live[q * 4 + l]) { any = 1; break; }
        if (!any) continue;
        if (blend_mode == 0) {           /* replace */
            for (i64 q = s; q < e; q++)
                for (int l = 0; l < 4; l++) {
                    if (!live[q * 4 + l]) continue;
                    double *dst = fbcolor
                        + (ys[q * 4 + l] * cw + xs[q * 4 + l]) * 4;
                    const double *src = colors + (q * 4 + l) * 4;
                    for (int ch = 0; ch < 4; ch++) dst[ch] = src[ch];
                }
        } else if (blend_mode == 1) {    /* add: accumulate, then clip */
            for (i64 q = s; q < e; q++)
                for (int l = 0; l < 4; l++) {
                    if (!live[q * 4 + l]) continue;
                    double *dst = fbcolor
                        + (ys[q * 4 + l] * cw + xs[q * 4 + l]) * 4;
                    const double *src = colors + (q * 4 + l) * 4;
                    for (int ch = 0; ch < 4; ch++)
                        dst[ch] = dst[ch] + src[ch];
                }
            for (i64 q = s; q < e; q++)
                for (int l = 0; l < 4; l++) {
                    if (!live[q * 4 + l]) continue;
                    double *dst = fbcolor
                        + (ys[q * 4 + l] * cw + xs[q * 4 + l]) * 4;
                    for (int ch = 0; ch < 4; ch++) {
                        double vv = dst[ch];
                        if (vv < 0.0) vv = 0.0;
                        else if (vv > 1.0) vv = 1.0;
                        dst[ch] = vv;
                    }
                }
        } else if (blend_mode == 2) {    /* modulate */
            for (i64 q = s; q < e; q++)
                for (int l = 0; l < 4; l++) {
                    if (!live[q * 4 + l]) continue;
                    double *dst = fbcolor
                        + (ys[q * 4 + l] * cw + xs[q * 4 + l]) * 4;
                    const double *src = colors + (q * 4 + l) * 4;
                    for (int ch = 0; ch < 4; ch++)
                        dst[ch] = dst[ch] * src[ch];
                }
        } else {                         /* alpha */
            for (i64 q = s; q < e; q++)
                for (int l = 0; l < 4; l++) {
                    if (!live[q * 4 + l]) continue;
                    double *dst = fbcolor
                        + (ys[q * 4 + l] * cw + xs[q * 4 + l]) * 4;
                    const double *src = colors + (q * 4 + l) * 4;
                    double a = src[3];
                    for (int ch = 0; ch < 4; ch++) {
                        double na = a * src[ch];
                        double nb = (1.0 - a) * dst[ch];
                        dst[ch] = na + nb;
                    }
                }
        }
        i64 ne = 0;
        for (i64 q = s; q < e; q++) {
            i64 bx = xs[q * 4] / block;
            i64 by = ys[q * 4] / block;
            i64 line = by * blocks_x + bx;
            i64 evicted = -1;
            acc++;
            if (lru_touch(line, 1, c_lines, c_dirty, c_sizes,
                          nsets, ways, line_bytes, &evicted)) {
                hits++;
            } else {
                misses++;
                uint8_t st = block_state[line];
                i64 nb = line_bytes;
                if (compression && st == 1) nb = line_bytes / 2;  /* COMPRESSED */
                if (fast_clear && st == 0) nb = 0;                /* CLEARED */
                rbytes += nb;
            }
            if (evicted >= 0) escratch[ne++] = evicted / line_bytes;
        }
        for (i64 k = 0; k < ne; k++) {
            i64 line = escratch[k];
            i64 bx = line % blocks_x, by = line / blocks_x;
            uint8_t uni = 0;
            if (compression) {
                const double *base = fbcolor
                    + (by * block * cw + bx * block) * 4;
                double c0[4];
                for (int ch = 0; ch < 4; ch++) {
                    double vv = base[ch];
                    if (vv < 0.0) vv = 0.0; else if (vv > 1.0) vv = 1.0;
                    c0[ch] = vv;
                }
                uni = 1;
                for (i64 r = 0; r < block && uni; r++) {
                    const double *row = base + r * cw * 4;
                    for (i64 c = 0; c < block * 4; c++) {
                        double vv = row[c];
                        if (vv < 0.0) vv = 0.0; else if (vv > 1.0) vv = 1.0;
                        double d = fabs(vv - c0[c & 3]);
                        if (!(d < thresh)) { uni = 0; break; }
                    }
                }
            }
            wbytes += uni ? line_bytes / 2 : line_bytes;
            block_state[line] = uni ? 1 : 2;  /* COMPRESSED : UNCOMPRESSED */
        }
    }
    counts[0] = acc;
    counts[1] = hits;
    counts[2] = misses;
    counts[3] = rbytes;
    counts[4] = wbytes;
}

/* Fused early-Z pass over a frame arena chunk: HZ cull, Z/stencil
   test-and-write, and HZ/stencil-band refresh for every (segment,
   triangle) group of the quads listed in idx, in one sequential walk.
   This is the per-triangle reference schedule (cull the triangle's quads
   against the frozen HZ state, test and write each quad's lanes
   sequentially, then refresh the touched blocks' stencil bands and — when
   the segment writes depth — HZ extents), so every per-block operation
   sequence matches ZStencilStage.process exactly.  Block refreshes are
   idempotent full-tile recomputes; duplicates are skipped only when
   consecutive.  Depth and stencil semantics mirror zstencil.py: depth
   funcs never/less/lequal/equal(|dz| <= 1e-7)/always (NaN fails every
   comparison); stencil funcs always/never/equal/notequal against the
   original stencil value; ops keep/zero/replace/incr_wrap/decr_wrap with
   numpy's nonnegative modulo; only changed stencil lanes store.  A quad
   counts as wrote when any stencil lane changed or any lane passed a
   depth-writing test (even writing an equal z), exactly like test_write.
   idx lists arena quad indices in stream order — the caller may pass a
   screen-space tile's subset; quads never span blocks and tiles never
   split blocks, so per-tile walks are independent and bit-identical to
   the single walk.  params is 16 i64 per segment: depth_test, depth_func,
   depth_write, stencil_test, stencil_func, stencil_ref, stencil_write,
   front sfail/zfail/zpass, back sfail/zfail/zpass, hz_on, hz_minmax,
   hz_stencil.  Outputs (pass_mask/entered/wrote/schanged zeroed by the
   caller) are indexed by arena quad; seg_counts is 4 i64 per segment:
   hz-culled quads, fragments tested, quads tested, complete quads. */
void zpass(const i64 *idx, i64 nidx,
           const i64 *seg_of, const i64 *tri,
           const i64 *qx, const i64 *qy, const uint8_t *cover,
           const double *z, const uint8_t *front,
           const i64 *params,
           double *fbz, i64 zw,
           void *stencil_v,
           double *hz_max, double *hz_min,
           void *hzs_min_v, void *hzs_max_v,
           i64 block, i64 blocks_x,
           uint8_t *pass_mask, uint8_t *entered, uint8_t *wrote,
           uint8_t *schanged, i64 *seg_counts)
{
    static const i64 DX[4] = {0, 1, 0, 1};
    static const i64 DY[4] = {0, 0, 1, 1};
    int16_t *stencil = (int16_t *)stencil_v;
    int16_t *hzs_min = (int16_t *)hzs_min_v;
    int16_t *hzs_max = (int16_t *)hzs_max_v;
    i64 g0 = 0;
    while (g0 < nidx) {
        i64 s = seg_of[idx[g0]];
        i64 t = tri[idx[g0]];
        i64 g1 = g0;
        while (g1 < nidx && seg_of[idx[g1]] == s && tri[idx[g1]] == t) g1++;
        const i64 *P = params + s * 16;
        i64 depth_test = P[0], dfunc = P[1], depth_write = P[2];
        i64 stencil_test = P[3], sfunc = P[4], sref = P[5];
        i64 stencil_write = P[6];
        i64 hz_on = P[13], hz_minmax = P[14], hz_stencil = P[15];
        i64 *SC = seg_counts + s * 4;
        for (i64 k = g0; k < g1; k++) {
            i64 q = idx[k];
            const uint8_t *cov = cover + q * 4;
            const double *zq = z + q * 4;
            i64 bx = qx[q] * 2 / block, by = qy[q] * 2 / block;
            i64 b = by * blocks_x + bx;
            if (hz_on) {
                int culled;
                double zmin = INFINITY;
                for (int l = 0; l < 4; l++) {
                    double v = cov[l] ? zq[l] : INFINITY;
                    if (v < zmin || v != v) zmin = v;
                }
                if (hz_minmax) {
                    double zmax = -INFINITY;
                    for (int l = 0; l < 4; l++) {
                        double v = cov[l] ? zq[l] : -INFINITY;
                        if (v > zmax || v != v) zmax = v;
                    }
                    culled = (zmin > hz_max[b]) || (zmax < hz_min[b]);
                } else {
                    culled = zmin > hz_max[b];
                }
                if (!culled && hz_stencil) {
                    int16_t smn = hzs_min[b], smx = hzs_max[b];
                    if (sfunc == 2)
                        culled = (sref < (i64)smn) || (sref > (i64)smx);
                    else if (sfunc == 3)
                        culled = ((i64)smn == sref) && ((i64)smx == sref);
                }
                if (culled) { SC[0]++; continue; }
            }
            entered[q] = 1;
            i64 op_sfail = front[q] ? P[7] : P[10];
            i64 op_zfail = front[q] ? P[8] : P[11];
            i64 op_zpass = front[q] ? P[9] : P[12];
            int changed_any = 0, zwrote_any = 0;
            i64 frag = 0;
            int all4 = 1;
            for (int l = 0; l < 4; l++) {
                uint8_t al = cov[l];
                if (al) frag++; else all4 = 0;
                i64 pix = (qy[q] * 2 + DY[l]) * zw + qx[q] * 2 + DX[l];
                double cur_z = fbz[pix];
                int16_t cur_s = stencil[pix];
                int zp;
                if (!depth_test) zp = 1;
                else if (dfunc == 1) zp = zq[l] < cur_z;
                else if (dfunc == 2) zp = zq[l] <= cur_z;
                else if (dfunc == 3) zp = fabs(zq[l] - cur_z) <= 1e-7;
                else zp = dfunc == 4;
                int sp;
                if (!stencil_test) sp = 1;
                else if (sfunc == 0) sp = 1;
                else if (sfunc == 2) sp = (i64)cur_s == sref;
                else if (sfunc == 3) sp = (i64)cur_s != sref;
                else sp = 0;
                int passed = al && zp && sp;
                pass_mask[q * 4 + l] = (uint8_t)passed;
                if (stencil_test && stencil_write && al) {
                    i64 op = !sp ? op_sfail : (!zp ? op_zfail : op_zpass);
                    if (op != 0) {
                        i64 ns;
                        if (op == 1) ns = 0;
                        else if (op == 2) ns = sref;
                        else if (op == 3) ns = ((cur_s + 1) % 256 + 256) % 256;
                        else ns = ((cur_s - 1) % 256 + 256) % 256;
                        if ((int16_t)ns != cur_s) {
                            stencil[pix] = (int16_t)ns;
                            changed_any = 1;
                        }
                    }
                }
                if (depth_test && depth_write && passed) {
                    fbz[pix] = zq[l];
                    zwrote_any = 1;
                }
            }
            SC[1] += frag;
            SC[2]++;
            SC[3] += all4;
            if (changed_any) schanged[q] = 1;
            if (changed_any || zwrote_any) wrote[q] = 1;
        }
        /* Band/HZ refresh after the whole triangle, in the reference
           order: stencil bands of changed blocks first, then (when the
           segment writes depth) HZ extents of every written block. */
        i64 prev_b = -1;
        for (i64 k = g0; k < g1; k++) {
            i64 q = idx[k];
            if (!schanged[q]) continue;
            i64 b = (qy[q] * 2 / block) * blocks_x + qx[q] * 2 / block;
            if (b == prev_b) continue;
            prev_b = b;
            const int16_t *sb = stencil
                + (b / blocks_x) * block * zw + (b % blocks_x) * block;
            int16_t mn = sb[0], mx = sb[0];
            for (i64 r = 0; r < block; r++) {
                const int16_t *row = sb + r * zw;
                for (i64 c = 0; c < block; c++) {
                    int16_t v = row[c];
                    if (v < mn) mn = v;
                    if (v > mx) mx = v;
                }
            }
            hzs_min[b] = mn;
            hzs_max[b] = mx;
        }
        if (depth_write) {
            prev_b = -1;
            for (i64 k = g0; k < g1; k++) {
                i64 q = idx[k];
                if (!wrote[q]) continue;
                i64 b = (qy[q] * 2 / block) * blocks_x + qx[q] * 2 / block;
                if (b == prev_b) continue;
                prev_b = b;
                const double *zb = fbz
                    + (b / blocks_x) * block * zw + (b % blocks_x) * block;
                double mx = zb[0], mn = zb[0];
                for (i64 r = 0; r < block; r++) {
                    const double *row = zb + r * zw;
                    for (i64 c = 0; c < block; c++) {
                        double v = row[c];
                        if (v > mx || v != v) mx = v;
                        if (v < mn || v != v) mn = v;
                    }
                }
                hz_max[b] = mx;
                hz_min[b] = mn;
            }
        }
        g0 = g1;
    }
}
"""

_lib: ctypes.CDLL | None = None
_tried = False

_I64P = np.ctypeslib.ndpointer(np.int64, flags="C_CONTIGUOUS")
_U8P = np.ctypeslib.ndpointer(np.uint8, flags="C_CONTIGUOUS")
_F64P = np.ctypeslib.ndpointer(np.float64, flags="C_CONTIGUOUS")
_F32P = np.ctypeslib.ndpointer(np.float32, flags="C_CONTIGUOUS")


def _cache_dirs() -> list[pathlib.Path]:
    dirs = []
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        dirs.append(pathlib.Path(override))
    dirs.append(pathlib.Path(__file__).resolve().parent / "_build")
    dirs.append(pathlib.Path(tempfile.gettempdir()) / "repro-native")
    return dirs


def _source_digest() -> str:
    """Full SHA-256 of the C source — the binary cache key."""
    return hashlib.sha256(_SOURCE.encode()).hexdigest()


def _sidecar(so_path: pathlib.Path) -> pathlib.Path:
    return so_path.with_name(so_path.name + ".sha256")


def _compile(so_path: pathlib.Path) -> bool:
    cc = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    if cc is None:
        return False
    try:
        so_path.parent.mkdir(parents=True, exist_ok=True)
        with tempfile.TemporaryDirectory(dir=so_path.parent) as tmp:
            src = pathlib.Path(tmp) / "kernels.c"
            src.write_text(_SOURCE)
            out = pathlib.Path(tmp) / "kernels.so"
            # -ffp-contract=off: the float kernels promise numpy's exact
            # IEEE results, so the compiler must not fuse multiply-adds.
            subprocess.run(
                [
                    cc, "-O2", "-ffp-contract=off", "-shared", "-fPIC",
                    str(src), "-o", str(out), "-lm",
                ],
                check=True,
                capture_output=True,
                timeout=120,
            )
            # Atomic publish: concurrent farm workers may race to build.
            # The sidecar records the source digest the binary was built
            # from and goes first, so a visible .so always has its proof.
            side = pathlib.Path(tmp) / "kernels.sha256"
            side.write_text(_source_digest())
            os.replace(side, _sidecar(so_path))
            os.replace(out, so_path)
        return True
    except (OSError, subprocess.SubprocessError):
        return False


def _verified(so_path: pathlib.Path) -> bool:
    """Whether the cached binary's sidecar matches the current source."""
    try:
        return _sidecar(so_path).read_text().strip() == _source_digest()
    except OSError:
        return False


def _quarantine(so_path: pathlib.Path) -> None:
    """Move a failed binary (and its sidecar) aside for post-mortem."""
    for path in (so_path, _sidecar(so_path)):
        try:
            os.replace(path, path.with_name(path.name + f".bad-{os.getpid()}"))
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass


def _load() -> ctypes.CDLL | None:
    # Keyed by the *full* SHA-256 of the C source: editing any kernel can
    # never load a stale binary.  A corrupt or mismatched artifact (bad
    # sidecar, unloadable .so, missing symbol) is quarantined and rebuilt
    # once before falling through to the next cache directory.
    name = f"repro-kernels-{_source_digest()}.so"
    for directory in _cache_dirs():
        so_path = directory / name
        lib = None
        for _attempt in range(2):
            if not so_path.exists() and not _compile(so_path):
                break
            if not _verified(so_path):
                _quarantine(so_path)
                continue
            try:
                lib = ctypes.CDLL(str(so_path))
                _configure(lib)
            except (OSError, AttributeError):
                lib = None
                _quarantine(so_path)
                continue
            break
        if lib is not None:
            return lib
    return None


def _configure(lib: ctypes.CDLL) -> None:
    """Set prototypes; raises AttributeError when a kernel is missing."""
    lib.lru_run.restype = None
    lib.lru_run.argtypes = [
        _I64P, ctypes.c_int64, ctypes.c_int, ctypes.c_void_p,
        _I64P, _U8P, _I64P,
        ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
        _I64P, _I64P, _I64P,
    ]
    lib.texcache.restype = None
    lib.texcache.argtypes = [
        _F64P, _F64P, _F64P, _F64P,
        _I64P, _I64P, _I64P, ctypes.c_int64,
        ctypes.c_int64, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
        _I64P, ctypes.c_int64,
        ctypes.c_int64, ctypes.c_int64,
        _I64P,
        _I64P, _U8P, _I64P, ctypes.c_int64, ctypes.c_int64,
        _I64P, _U8P, _I64P, ctypes.c_int64, ctypes.c_int64,
        ctypes.c_int64,
        _I64P,
    ]
    lib.raster_edges.restype = None
    lib.raster_edges.argtypes = [
        _I64P, _I64P, _I64P, ctypes.c_int64,
        _F64P, _F64P, _F64P, _U8P,
        _F64P, _U8P,
    ]
    lib.raster_interp.restype = None
    lib.raster_interp.argtypes = [
        _F64P, ctypes.c_int64,
        _I64P, _I64P, ctypes.c_int64,
        _F64P,
        _F64P, _F64P, _F64P, _F64P,
        _F64P, _F64P, _F64P,
    ]
    lib.hz_update.restype = None
    lib.hz_update.argtypes = [
        _F64P, ctypes.c_int64, ctypes.c_int64,
        _I64P, _I64P, ctypes.c_int64,
        _F64P, _F64P, ctypes.c_int64,
    ]
    lib.blocks_uniform.restype = None
    lib.blocks_uniform.argtypes = [
        _F64P, ctypes.c_int64, ctypes.c_int64,
        _I64P, _I64P, ctypes.c_int64, _U8P,
    ]
    lib.bilinear.restype = None
    lib.bilinear.argtypes = [
        _F32P, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
        _F64P, _F64P, ctypes.c_int64,
        ctypes.c_int64, _F32P,
    ]
    lib.bilinear_levels.restype = None
    lib.bilinear_levels.argtypes = [
        _F32P, _I64P, _I64P, _I64P, ctypes.c_int64,
        _F64P, _F64P, _I64P, ctypes.c_int64,
        _F32P,
    ]
    lib.colorpass.restype = None
    lib.colorpass.argtypes = [
        _I64P, _I64P, _F64P, _U8P, ctypes.c_int64,
        _I64P, _I64P, ctypes.c_int64,
        ctypes.c_int64,
        _F64P, ctypes.c_int64,
        _U8P, ctypes.c_int64, ctypes.c_int64,
        _I64P, _U8P, _I64P, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
        ctypes.c_int64, ctypes.c_int64,
        _I64P, _I64P,
    ]
    lib.zpass.restype = None
    lib.zpass.argtypes = [
        _I64P, ctypes.c_int64,
        _I64P, _I64P,
        _I64P, _I64P, _U8P, _F64P, _U8P,
        _I64P,
        _F64P, ctypes.c_int64,
        ctypes.c_void_p,
        _F64P, _F64P,
        ctypes.c_void_p, ctypes.c_void_p,
        ctypes.c_int64, ctypes.c_int64,
        _U8P, _U8P, _U8P, _U8P,
        _I64P,
    ]


def _fault_blocked() -> bool:
    """Whether an injected fault plan disables the native build.

    Imported lazily: this module is loaded early in the ``repro.gpu``
    import chain, and the fault layer lives in ``repro.farm`` — a runtime
    import here keeps the module graph acyclic.
    """
    if "REPRO_FAULTS" not in os.environ:
        return False
    try:
        from repro.farm.faults import native_compile_fault

        return native_compile_fault()
    except Exception:
        return False


def _reset() -> None:
    """Forget the cached probe so the next :func:`available` re-evaluates.

    Used by the fault-injection layer (forked pool workers inherit the
    parent's probe result) and by tests.
    """
    global _lib, _tried
    _lib = None
    _tried = False


def available() -> bool:
    """Whether the compiled kernel can be used (lazy one-time build)."""
    global _lib, _tried
    if not _tried:
        _tried = True
        if os.environ.get("REPRO_NO_NATIVE") or _fault_blocked():
            _lib = None
        else:
            _lib = _load()
    return _lib is not None


def lru_run(
    stream: np.ndarray,
    write_mode: int,
    flags: np.ndarray | None,
    lines: np.ndarray,
    dirty: np.ndarray,
    sizes: np.ndarray,
    nsets: int,
    ways: int,
    line_bytes: int,
    miss_buf: np.ndarray,
    evict_buf: np.ndarray,
) -> tuple[int, np.ndarray, np.ndarray]:
    """Run the kernel in place over ``lines``/``dirty``/``sizes``.

    Returns ``(hits, miss_lines, dirty_eviction_addrs)``; the state arrays
    are updated to the post-stream LRU contents.  ``miss_buf``/``evict_buf``
    are caller-owned scratch arrays of at least ``len(stream)`` entries; the
    returned arrays are trimmed copies.
    """
    n = stream.shape[0]
    counts = np.zeros(3, dtype=np.int64)
    if flags is None:
        flags_ptr = None
    else:
        flags_ptr = flags.ctypes.data_as(ctypes.c_void_p)
    _lib.lru_run(
        stream, n, write_mode, flags_ptr,
        lines, dirty, sizes,
        nsets, ways, line_bytes,
        miss_buf, evict_buf, counts,
    )
    hits, misses, evictions = (int(v) for v in counts)
    return hits, miss_buf[:misses].copy(), evict_buf[:evictions].copy()


def texcache(
    u: np.ndarray,
    v: np.ndarray,
    du: np.ndarray,
    dv: np.ndarray,
    mip0: np.ndarray,
    probes: np.ndarray,
    mips: np.ndarray,
    max_probes: int,
    max_level: int,
    width: int,
    height: int,
    mip_offsets: np.ndarray,
    base_address: int,
    block_bytes: int,
    bucket: np.ndarray,
    l0_state: tuple[np.ndarray, np.ndarray, np.ndarray],
    l0_geometry: tuple[int, int],
    l1_state: tuple[np.ndarray, np.ndarray, np.ndarray],
    l1_geometry: tuple[int, int],
    l1_line_bytes: int,
) -> tuple[int, int, int, int, int] | None:
    """Fused texture address generation + L0/L1 cache walk, in place.

    Returns ``(emitted, l0_hits, l0_misses, l1_hits, l1_misses)`` and
    mutates both cache state triples, or ``None`` (state untouched) when
    ``max_probes`` exceeds the kernel's bucket capacity.  ``bucket`` is
    caller scratch of at least ``probes.sum()`` int64 entries.
    """
    counts = np.zeros(5, dtype=np.int64)
    _lib.texcache(
        u, v, du, dv,
        mip0, probes, mips, u.shape[0],
        max_probes, max_level, width, height,
        mip_offsets, mip_offsets.shape[0],
        base_address, block_bytes,
        bucket,
        l0_state[0], l0_state[1], l0_state[2],
        l0_geometry[0], l0_geometry[1],
        l1_state[0], l1_state[1], l1_state[2],
        l1_geometry[0], l1_geometry[1],
        l1_line_bytes,
        counts,
    )
    if counts[0] < 0:
        return None
    return tuple(int(v) for v in counts)  # type: ignore[return-value]


def raster_edges(
    cqx: np.ndarray,
    cqy: np.ndarray,
    tri: np.ndarray,
    ea: np.ndarray,
    eb: np.ndarray,
    ec: np.ndarray,
    etl: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Edge values (3, n, 4) and coverage mask (n, 4) for candidate quads."""
    n = cqx.shape[0]
    es = np.empty((3, n, 4), dtype=np.float64)
    covered = np.empty((n, 4), dtype=np.uint8)
    _lib.raster_edges(cqx, cqy, tri, n, ea, eb, ec, etl, es, covered)
    return es, covered


def raster_interp(
    es: np.ndarray,
    keep_idx: np.ndarray,
    tk: np.ndarray,
    inv_area: np.ndarray,
    zs: np.ndarray,
    ws: np.ndarray,
    uvs: np.ndarray,
    cols: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Depth (K, 4), uv (K, 4, 2) and color (K, 4, 4) for the kept quads."""
    nk = keep_idx.shape[0]
    depth = np.empty((nk, 4), dtype=np.float64)
    uv = np.empty((nk, 4, 2), dtype=np.float64)
    col = np.empty((nk, 4, 4), dtype=np.float64)
    _lib.raster_interp(
        es, es.shape[1], keep_idx, tk, nk,
        inv_area, zs, ws, uvs, cols,
        depth, uv, col,
    )
    return depth, uv, col


def hz_update(
    z: np.ndarray,
    block: int,
    bx: np.ndarray,
    by: np.ndarray,
    hz_max: np.ndarray,
    hz_min: np.ndarray,
) -> None:
    """Refresh ``hz_max``/``hz_min`` in place for the listed blocks."""
    _lib.hz_update(
        z, z.shape[1], block, bx, by, bx.shape[0],
        hz_max, hz_min, hz_max.shape[1],
    )


def blocks_uniform(
    color: np.ndarray,
    block: int,
    bx: np.ndarray,
    by: np.ndarray,
) -> np.ndarray:
    """Uniformity flags (uint8) for the listed color blocks."""
    out = np.empty(bx.shape[0], dtype=np.uint8)
    _lib.blocks_uniform(
        color, color.shape[1], block, bx, by, bx.shape[0], out,
    )
    return out


def bilinear(
    mip: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
    level: int,
    out: np.ndarray,
) -> None:
    """Bilinear fetch from one (h, w, c) float32 mip into ``out``."""
    h, w, nc = mip.shape
    _lib.bilinear(mip, h, w, nc, u, v, u.shape[0], level, out)


def bilinear_levels(
    flat: np.ndarray,
    offs: np.ndarray,
    hs: np.ndarray,
    ws: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
    mip0: np.ndarray,
    out: np.ndarray,
) -> None:
    """Bilinear fetch across a flattened RGBA mip chain, one pass."""
    _lib.bilinear_levels(
        flat, offs, hs, ws, offs.shape[0],
        u, v, mip0, u.shape[0], out,
    )


def colorpass(
    xs: np.ndarray,
    ys: np.ndarray,
    colors: np.ndarray,
    live: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    blend_mode: int,
    fbcolor: np.ndarray,
    block_state: np.ndarray,
    block: int,
    blocks_x: int,
    cache_state: tuple[np.ndarray, np.ndarray, np.ndarray],
    nsets: int,
    ways: int,
    line_bytes: int,
    compression: bool,
    fast_clear: bool,
    escratch: np.ndarray,
) -> tuple[int, int, int, int, int]:
    """Fused color blend + cache accounting over per-triangle groups.

    Mutates ``fbcolor``/``block_state`` and the cache state triple in
    place; returns ``(accesses, hits, misses, read_bytes, write_bytes)``.
    ``escratch`` is caller scratch of at least ``len(xs) // 4`` entries.
    """
    nquads = xs.shape[0] // 4
    counts = np.zeros(5, dtype=np.int64)
    _lib.colorpass(
        xs, ys, colors, live, nquads,
        starts, ends, starts.shape[0],
        blend_mode,
        fbcolor, fbcolor.shape[1],
        block_state, block, blocks_x,
        cache_state[0], cache_state[1], cache_state[2],
        nsets, ways, line_bytes,
        int(compression), int(fast_clear),
        escratch, counts,
    )
    return tuple(int(v) for v in counts)  # type: ignore[return-value]


def zpass(
    idx: np.ndarray,
    seg_of: np.ndarray,
    tri: np.ndarray,
    qx: np.ndarray,
    qy: np.ndarray,
    cover: np.ndarray,
    z: np.ndarray,
    front: np.ndarray,
    params: np.ndarray,
    fbz: np.ndarray,
    stencil: np.ndarray,
    hz_max: np.ndarray,
    hz_min: np.ndarray,
    hzs_min: np.ndarray,
    hzs_max: np.ndarray,
    block: int,
    pass_mask: np.ndarray,
    entered: np.ndarray,
    wrote: np.ndarray,
    schanged: np.ndarray,
    seg_counts: np.ndarray,
) -> None:
    """Fused HZ-cull + Z/stencil test-and-write over arena quads ``idx``.

    Mutates the framebuffer planes, HZ arrays, and the caller-zeroed
    ``pass_mask``/``entered``/``wrote``/``schanged``/``seg_counts``.
    """
    _lib.zpass(
        idx, idx.shape[0],
        seg_of, tri,
        qx, qy, cover, z, front,
        params,
        fbz, fbz.shape[1],
        stencil.ctypes.data_as(ctypes.c_void_p),
        hz_max, hz_min,
        hzs_min.ctypes.data_as(ctypes.c_void_p),
        hzs_max.ctypes.data_as(ctypes.c_void_p),
        block, hz_max.shape[1],
        pass_mask, entered, wrote, schanged,
        seg_counts,
    )
