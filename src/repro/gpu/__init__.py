"""ATTILA-like functional GPU pipeline simulator.

Executes API traces through the full rendering pipeline — vertex fetch and
post-transform cache, vertex shading, primitive assembly, clip/cull, tiled
edge-function rasterization, Hierarchical Z, Z/stencil with fast-clear and
compression, fragment shading with KIL, mip/trilinear/anisotropic texturing
through L0/L1 caches over DXT-compressed textures, and blend/color with
fast-clear and compression — while attributing every event and byte to the
counters behind the paper's Tables VII–XVII.
"""

from repro.gpu.config import GpuConfig, CacheConfig
from repro.gpu.stats import GpuStats, FrameGpuStats, MemClient
from repro.gpu.caches import Cache
from repro.gpu.memory import MemoryController
from repro.gpu.framebuffer import Framebuffer, BlockState
from repro.gpu.texture import TextureResource, TextureUnit, TextureFormat, TextureFilter
from repro.gpu.pipeline import GpuSimulator

__all__ = [
    "GpuConfig",
    "CacheConfig",
    "GpuStats",
    "FrameGpuStats",
    "MemClient",
    "Cache",
    "MemoryController",
    "Framebuffer",
    "BlockState",
    "TextureResource",
    "TextureUnit",
    "TextureFormat",
    "TextureFilter",
    "GpuSimulator",
]
