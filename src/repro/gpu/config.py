"""GPU configuration (the paper's Table II machine).

The reproduction is functional, so most parameters here size the *memory
system* (which does change results — the paper notes cache configuration
"directly affects the memory BW consumed"); the throughput rates are carried
for Table II itself and for the coarse cycle estimator in
:mod:`repro.gpu.perf`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache: ``ways`` x ``sets`` x ``line_bytes``."""

    size_bytes: int
    line_bytes: int
    ways: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.size_bytes % (self.line_bytes * self.ways):
            raise ValueError(
                f"{self.name or 'cache'}: size must be a multiple of ways*line"
            )

    @property
    def sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.ways)

    def describe(self) -> str:
        if self.sets == 1:
            return f"{self.ways}w x {self.line_bytes}B"
        return f"{self.ways}w x {self.sets}s x {self.line_bytes}B"


def scaled_cache(cache: CacheConfig, factor: float) -> CacheConfig:
    """``cache`` resized by ``factor`` with a valid ways/sets geometry."""
    lines = max(2, int(round(cache.size_bytes * factor / cache.line_bytes)))
    ways = min(cache.ways, lines)
    while lines % ways:
        ways -= 1
    return CacheConfig(
        lines * cache.line_bytes, cache.line_bytes, ways, cache.name
    )


@dataclass(frozen=True)
class GpuConfig:
    """Machine description, defaulting to the paper's ATTILA/R520 setup."""

    width: int = 1024
    height: int = 768

    # Table II rates (unified shader ATTILA configured to match an R520).
    shader_units: int = 16
    triangles_per_cycle: int = 2
    bilinears_per_cycle: int = 16
    zstencil_rate: int = 16
    color_rate: int = 16
    memory_bytes_per_cycle: int = 64

    # Geometry front end.
    vertex_cache_entries: int = 16
    vertex_fetch_granularity: int = 32  # bytes per vertex-memory transaction

    # Caches (Table XIV geometries).
    zstencil_cache: CacheConfig = CacheConfig(16 * 1024, 256, 64, "zstencil")
    color_cache: CacheConfig = CacheConfig(16 * 1024, 256, 64, "color")
    texture_l0: CacheConfig = CacheConfig(4 * 1024, 64, 64, "texture_l0")
    texture_l1: CacheConfig = CacheConfig(16 * 1024, 64, 16, "texture_l1")

    # Bandwidth-reduction features.
    hierarchical_z: bool = True
    # Paper Section III.C extensions: "a better HZ implementation (for
    # example combining stencil into the HZ buffer or a HZ storing maximum
    # and minimum values)".  Off by default to match the baseline ATTILA.
    hz_min_max: bool = False
    hz_stencil: bool = False
    z_fast_clear: bool = True
    z_compression: bool = True
    color_fast_clear: bool = True
    color_compression: bool = True

    # Texturing.
    max_anisotropy: int = 16

    # Pipeline execution strategy (results are bit-identical either way):
    # True runs the draw-level QuadStream path, False the per-triangle
    # reference path kept for A/B regression testing.
    vectorized: bool = True

    # Frame-level mega-batch path: accumulate every early-Z draw's quads
    # into one SoA arena and run the Z/stencil stage as one native pass
    # per frame chunk (requires ``vectorized``; see repro.gpu.fused).
    # ``threads`` splits the arena into screen-space tile bands processed
    # by an in-process pool — results stay bit-identical at any count.
    fused: bool = False
    threads: int = 1

    # Display.
    framebuffer_bytes_per_pixel: int = 4  # RGBA8 color; z24s8 likewise 4B

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("resolution must be positive")
        if self.zstencil_cache.line_bytes != 256 and self.zstencil_cache.line_bytes < 4:
            raise ValueError("z/stencil line too small")
        if self.threads < 1:
            raise ValueError("threads must be >= 1")

    @property
    def pixels(self) -> int:
        return self.width * self.height

    @property
    def hz_block(self) -> int:
        """Hierarchical-Z / framebuffer block edge in pixels.

        One cache line (256 B at 4 B/pixel) covers an 8x8 pixel block; HZ,
        fast clear and compression all operate at this granularity.
        """
        pixels_per_line = self.zstencil_cache.line_bytes // self.framebuffer_bytes_per_pixel
        edge = int(pixels_per_line**0.5)
        return max(2, edge)

    def with_resolution(self, width: int, height: int) -> "GpuConfig":
        return replace(self, width=width, height=height)

    def with_scaled_caches(
        self,
        factor: float,
        include_texture: bool = False,
        l1_factor: float | None = None,
    ) -> "GpuConfig":
        """Scale cache capacities by ``factor`` (line sizes unchanged).

        Used by the reduced-resolution simulation profile: the Z and color
        caches hold *screen regions*, so their footprint must shrink with
        the framebuffer to preserve the paper's miss behaviour.  The texture
        L0 holds the *instantaneous sampling working set* (bound textures x
        filter footprint), which does not scale with resolution, so it is
        left alone unless ``include_texture`` is set; the L1, whose misses
        are the GDDR texture traffic, covers the per-frame texel footprint
        and scales via ``l1_factor`` (defaults to no scaling).
        """

        replacements = {
            "zstencil_cache": scaled_cache(self.zstencil_cache, factor),
            "color_cache": scaled_cache(self.color_cache, factor),
        }
        if include_texture:
            replacements["texture_l0"] = scaled_cache(self.texture_l0, factor)
            replacements["texture_l1"] = scaled_cache(self.texture_l1, factor)
        elif l1_factor is not None:
            replacements["texture_l1"] = scaled_cache(self.texture_l1, l1_factor)
        return replace(self, **replacements)

    @staticmethod
    def r520(width: int = 1024, height: int = 768) -> "GpuConfig":
        """The reference configuration of the paper's Table II."""
        return GpuConfig(width=width, height=height)

    def table2_rows(self) -> list[tuple[str, str, str]]:
        """(parameter, R520, ATTILA) rows as printed in Table II."""
        return [
            ("Vertex/Fragment Shaders", "8/16", f"{self.shader_units} (unified)"),
            (
                "Triangle Setup",
                "2 triangles/cycle",
                f"{self.triangles_per_cycle} triangles/cycle",
            ),
            (
                "Texture Rate",
                "16 bilinears/cycle",
                f"{self.bilinears_per_cycle} bilinears/cycle",
            ),
            (
                "ZStencil / Color Rates",
                "16 / 16 fragments/cycle",
                f"{self.zstencil_rate} / {self.color_rate} fragments/cycle",
            ),
            (
                "Memory BW",
                "> 64 bytes/cycle",
                f"{self.memory_bytes_per_cycle} bytes/cycle",
            ),
        ]
