"""Top-level GPU simulator: replays API traces through the full pipeline.

Per draw call: vertex fetch + post-transform cache + vertex shading →
primitive assembly → clip/cull → per-triangle rasterization into quads →
Hierarchical Z → (early or late) Z/stencil → fragment shading with textures
and KIL → color mask / blend.  Early Z runs before shading unless the
fragment program can kill fragments (the paper's alpha-test rule); the
stencil-shadow passes run with HZ disabled and color writes masked, exactly
the flow that produces the paper's Doom3/Quake4 numbers.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

from repro.api.commands import (
    BindTexture,
    Clear,
    Draw,
    SetUniform,
    UploadResource,
)
from repro.api.state import StateMachine
from repro.api.trace import Frame, Trace
from repro.geometry.mesh import Mesh
from repro.observe import metrics as obs_metrics
from repro.observe import spans as obs_spans
from repro.geometry.primitives import assemble_triangles
from repro.gpu.caches import Cache
from repro.gpu.clipper import clip_and_cull
from repro.gpu.color import ColorStage
from repro.gpu.config import GpuConfig
from repro.gpu.framebuffer import Framebuffer
from repro.gpu.memory import MemoryController
from repro.gpu.rasterizer import (
    QuadBatch,
    QuadStream,
    rasterize_draw,
    rasterize_triangle,
)
from repro.gpu.stats import FrameGpuStats, GpuStats, MemClient, QuadFate
from repro.gpu.texture import TextureFilter, TextureResource, TextureUnit
from repro.gpu.vertex import VertexStage
from repro.gpu.zstencil import ZStencilStage, block_ranks
from repro.shader.interpreter import ShaderInterpreter
from repro.shader.program import ShaderProgram

#: Estimated command-buffer bytes fetched by the Command Processor per call.
_CP_CALL_BYTES = 16


@dataclass
class SimulationResult:
    """Everything the experiment harness needs from one simulated run."""

    stats: GpuStats
    frame_stats: list[FrameGpuStats]
    memory: MemoryController
    caches: dict[str, Cache]
    config: GpuConfig
    images: list[np.ndarray] = field(default_factory=list)

    @property
    def pixels(self) -> int:
        return self.config.pixels

    def overdraw(self, stage: str) -> float:
        return self.stats.overdraw(stage, self.pixels)


class GpuSimulator:
    """Replays traces; owns all pipeline state (framebuffer, caches, …)."""

    def __init__(
        self,
        config: GpuConfig,
        meshes: dict[str, Mesh],
        programs: dict[str, ShaderProgram],
        textures: list[TextureResource] | None = None,
        texture_filter: TextureFilter = TextureFilter.ANISOTROPIC,
        max_aniso: int = 16,
    ):
        self.config = config
        self.meshes = meshes
        self.programs = programs
        self.memory = MemoryController()
        self.fb = Framebuffer(config.width, config.height, config.hz_block)
        self.vertex_stage = VertexStage(config, self.memory)
        self.zstencil = ZStencilStage(config, self.fb, self.memory)
        self.color_stage = ColorStage(config, self.fb, self.memory)
        self.texture_unit = TextureUnit(config, self.memory)
        for tex in textures or []:
            self.texture_unit.register(tex)
        self.texture_unit.set_filter(texture_filter, max_aniso)
        self.fragment_interp = ShaderInterpreter(sampler=self.texture_unit)
        self.machine = StateMachine()
        self.stats = GpuStats()
        self.frame_stats: list[FrameGpuStats] = []
        # Per-draw framebuffer footprint log, active only while a frame is
        # captured for the draw cache (see run_frame_captured).
        self._region_log: list | None = None

    # -- public API -----------------------------------------------------
    @property
    def frames_completed(self) -> int:
        """Frames fully simulated so far (the resume point)."""
        return len(self.frame_stats)

    def run_trace(
        self,
        trace: Trace,
        max_frames: int | None = None,
        fragment_stages: bool = True,
        keep_images: int = 0,
        resume: bool = False,
        on_frame=None,
        start_frame: int = 0,
    ) -> SimulationResult:
        """Simulate ``trace`` (optionally truncated) and return the results.

        ``fragment_stages=False`` runs the geometry pipeline only — cheap
        mode for the per-frame vertex-cache and clip/cull statistics (Figs. 5
        and 6) over long timedemos.  ``keep_images`` retains the color buffer
        of the first N frames.

        ``start_frame=k`` simulates a frame *shard*: the first ``k`` frames
        are fast-forwarded — their API calls are applied to the state
        machine only, with no rendering, statistics, or memory traffic — and
        simulation proper starts at frame ``k``.  Because every generated
        frame opens with a full clear (framebuffer reset, z/color/texture
        cache contents dropped), the pre-shard frames leave no pipeline
        state behind beyond the render state the fast-forward replays, so a
        shard's frames are bit-identical to the same frames of a serial run
        (``max_frames`` still counts *simulated* frames, i.e. the shard
        length).

        ``resume=True`` skips the first ``start_frame`` +
        :attr:`frames_completed` frames of the trace outright, continuing a
        simulator restored from a checkpoint: all pipeline state
        (framebuffer, caches, statistics, state machine) for the skipped
        frames is already present, so the merged result is identical to an
        uninterrupted run.  ``on_frame(sim, n)`` is invoked after each
        completed frame — the farm's checkpoint hook.
        """
        images: list[np.ndarray] = []
        if resume:  # checkpointed state already covers the fast-forward
            skip = start_frame + self.frames_completed
            forward = 0
        else:
            skip = 0
            forward = start_frame
        run_span = obs_spans.span("gpu.run", "gpu")
        try:
            for frame in trace.frames():
                if skip > 0:
                    skip -= 1
                    continue
                if forward > 0:
                    forward -= 1
                    self._fast_forward(frame)
                    continue
                if max_frames is not None and self.frames_completed >= max_frames:
                    break
                self.run_frame(frame, fragment_stages=fragment_stages)
                if len(images) < keep_images:
                    images.append(self.fb.color_image())
                if on_frame is not None:
                    on_frame(self, self.frames_completed)
        finally:
            if run_span:
                run_span.set("frames", self.frames_completed)
                run_span.set("start_frame", start_frame)
                obs_metrics.registry().gauge("gpu.memory_bytes").set(
                    int(self.memory.total_bytes)
                )
                run_span.__exit__(None, None, None)
        return self.result(images=images)

    def _fast_forward(self, frame: Frame) -> None:
        """Apply a pre-shard frame's calls to the render state only.

        No draws, clears, statistics, or memory traffic — those belong to
        the shard that owns the frame.  Replaying the state stream keeps
        program bindings, texture bindings, and uniforms exactly where a
        serial run would have them when the shard's first frame begins.
        """
        for call in frame.calls:
            self.machine.apply(call)

    def result(self, images: list[np.ndarray] | None = None) -> SimulationResult:
        """Merge the accumulated pipeline state into a SimulationResult.

        Valid at any frame boundary, which is what lets a checkpointed run
        hand back a result without re-walking the trace.
        """
        return SimulationResult(
            stats=self.stats,
            frame_stats=self.frame_stats,
            memory=self.memory,
            caches={
                "zstencil": self.zstencil.cache,
                "color": self.color_stage.cache,
                "texture_l0": self.texture_unit.l0,
                "texture_l1": self.texture_unit.l1,
            },
            config=self.config,
            images=images or [],
        )

    # -- draw-cache capture / reuse --------------------------------------
    def _cache_map(self) -> dict[str, Cache]:
        """The named caches of :meth:`result`, for delta capture/apply."""
        return {
            "zstencil": self.zstencil.cache,
            "color": self.color_stage.cache,
            "texture_l0": self.texture_unit.l0,
            "texture_l1": self.texture_unit.l1,
        }

    def run_frame_captured(
        self,
        frame: Frame,
        fragment_stages: bool = True,
        capture_image: bool = False,
    ) -> tuple[FrameGpuStats, dict]:
        """:meth:`run_frame` plus a reusable capture of its contributions.

        Returns ``(fstats, capture)`` where ``capture`` holds the frame's
        per-client memory deltas, per-cache counter deltas plus end-of-frame
        cache contents, the per-draw framebuffer footprints, and (when
        requested) the rendered image — the payload of a
        :class:`~repro.farm.drawcache.FrameRecord`.  The simulation itself
        is byte-for-byte :meth:`run_frame`; capture only observes.
        """
        mem_before = self.memory.snapshot()
        caches = self._cache_map()
        counters_before = {
            name: (c.hits, c.misses, c.accesses) for name, c in caches.items()
        }
        regions: list = []
        self._region_log = regions
        try:
            fstats = self.run_frame(frame, fragment_stages=fragment_stages)
        finally:
            self._region_log = None
        mem_delta = self.memory.delta_since(mem_before)
        capture = {
            "memory_reads": dict(mem_delta.reads),
            "memory_writes": dict(mem_delta.writes),
            "cache_deltas": {
                name: (
                    c.hits - counters_before[name][0],
                    c.misses - counters_before[name][1],
                    c.accesses - counters_before[name][2],
                )
                for name, c in caches.items()
            },
            "cache_states": {
                name: copy.deepcopy(c.__getstate__())
                for name, c in caches.items()
            },
            "draw_regions": tuple(regions),
            "image": self.fb.color_image() if capture_image else None,
        }
        return fstats, capture

    def apply_frame_record(self, record, frame: Frame) -> FrameGpuStats:
        """Replay a cached frame's contributions without simulating it.

        The state machine fast-forwards over the frame's calls (as it does
        for pre-shard frames), the recorded statistics/memory/cache-counter
        deltas are added, and the recorded end-of-frame cache contents are
        installed — leaving every piece of result-visible simulator state
        exactly where :meth:`run_frame` would.  The framebuffer is *not*
        restored; callers must only reuse a frame when the next simulated
        frame opens with a full clear (see
        :func:`repro.farm.drawcache.run_trace_incremental`).
        """
        self._fast_forward(frame)
        for client, nbytes in record.memory_reads.items():
            self.memory.reads[client] += nbytes
        for client, nbytes in record.memory_writes.items():
            self.memory.writes[client] += nbytes
        for name, cache in self._cache_map().items():
            d_hits, d_misses, d_accesses = record.cache_deltas[name]
            state = copy.deepcopy(record.cache_states[name])
            state["hits"] = cache.hits + d_hits
            state["misses"] = cache.misses + d_misses
            state["accesses"] = cache.accesses + d_accesses
            cache.__setstate__(state)
        fstats = copy.deepcopy(record.fstats)
        fstats.frame = frame.number
        fstats.merge_into(self.stats)
        self.frame_stats.append(fstats)
        return fstats

    def _fused_executor(self):
        """The frame-fusion engine, created on first use.

        Lazy so simulators restored from pre-fusion checkpoints (which
        lack the attribute) keep working, and non-fused runs never pay
        for it.
        """
        executor = getattr(self, "_fused_exec", None)
        if executor is None:
            from repro.gpu.fused import FusedExecutor

            executor = self._fused_exec = FusedExecutor(self)
        return executor

    def run_frame(self, frame: Frame, fragment_stages: bool = True) -> FrameGpuStats:
        fstats = FrameGpuStats(frame=frame.number)
        # Deferred draws must complete before anything that reads or
        # resets the framebuffer/caches runs (clears, uploads, the
        # end-of-frame color flush); those are the only hazard points a
        # frame's call stream contains.
        fused_on = self.config.fused and self.config.vectorized
        frame_span = obs_spans.span("gpu.frame", "gpu")
        if frame_span:
            frame_span.set("frame", frame.number)
        try:
            for call in frame.calls:
                self.memory.read(MemClient.CP, self._command_bytes(call))
                if isinstance(call, Draw):
                    self._process_draw(call, fstats, fragment_stages)
                    continue
                if isinstance(call, UploadResource):
                    if fused_on:
                        self._fused_executor().flush()
                    self.memory.write(MemClient.CP, call.byte_size)
                elif isinstance(call, Clear):
                    if fused_on:
                        self._fused_executor().flush()
                    self._apply_clear(call)
                elif isinstance(call, BindTexture):
                    pass  # applied through the state machine below
                self.machine.apply(call)
            if fragment_stages:
                if fused_on:
                    self._fused_executor().flush()
                self.color_stage.flush()
                self.memory.read(
                    MemClient.DAC,
                    self.config.pixels * self.config.framebuffer_bytes_per_pixel,
                )
        finally:
            if frame_span:
                self._publish_frame_metrics(fstats)
                frame_span.__exit__(None, None, None)
        fstats.merge_into(self.stats)
        self.frame_stats.append(fstats)
        return fstats

    @staticmethod
    def _publish_frame_metrics(fstats: FrameGpuStats) -> None:
        """Per-frame event counts into the process-wide metrics registry.

        Only called while tracing — the counters travel in worker sidecars
        and merge order-independently at harvest.
        """
        reg = obs_metrics.registry()
        reg.counter("gpu.frames").inc()
        reg.counter("gpu.triangles_traversed").inc(fstats.triangles_traversed)
        reg.counter("gpu.fragments_rasterized").inc(fstats.fragments_rasterized)
        reg.counter("gpu.fragments_shaded").inc(fstats.fragments_shaded)
        reg.counter("gpu.fragments_blended").inc(fstats.fragments_blended)
        reg.histogram("gpu.frame_fragments_shaded").observe(
            fstats.fragments_shaded
        )

    # -- internals ------------------------------------------------------
    @staticmethod
    def _command_bytes(call) -> int:
        if isinstance(call, SetUniform):
            return _CP_CALL_BYTES + 4 * len(call.value)
        return _CP_CALL_BYTES

    def _apply_clear(self, call: Clear) -> None:
        if call.depth and call.stencil:
            self.fb.clear_depth_stencil(call.depth_value, call.stencil_value)
            self.zstencil.invalidate_cache()
        elif call.stencil:
            self.fb.clear_stencil_only(call.stencil_value)
        elif call.depth:
            self.fb.clear_depth_stencil(call.depth_value, self.fb.stencil_clear_value)
            self.zstencil.invalidate_cache()
        if call.color:
            self.fb.clear_color(call.color_value)
            self.color_stage.invalidate_cache()
        if call.color and call.depth:
            # A full-frame clear is the frame boundary: drop the texture
            # cache contents too (counters survive).  Cross-frame texel
            # reuse is negligible — a frame references far more lines than
            # the caches hold — and starting every frame cold makes frames
            # independent units, which the farm's frame sharding requires.
            self.texture_unit.invalidate_caches()

    def _gather_constants(self) -> dict[int, tuple]:
        uniforms = self.machine.uniforms
        constants: dict[int, tuple] = {}
        mvp = uniforms.get("mvp")
        if mvp is not None:
            rows = np.asarray(mvp, dtype=np.float64).reshape(4, 4)
            for i in range(4):
                constants[i] = tuple(rows[i])
        model = uniforms.get("model")
        if model is not None:
            rows = np.asarray(model, dtype=np.float64).reshape(4, 4)
            for i in range(3):
                constants[8 + i] = tuple(rows[i])
        for name, slot in (("light_dir", 4), ("light_color", 5), ("ambient", 6)):
            value = uniforms.get(name)
            if value is not None:
                constants[slot] = tuple(value)[:4]
        return constants

    def _process_draw(
        self, draw: Draw, fstats: FrameGpuStats, fragment_stages: bool
    ) -> None:
        """Span-accounting wrapper around :meth:`_process_draw_impl`.

        Kept as the patch point :class:`~repro.gpu.profiler.DrawProfiler`
        wraps.  With tracing disabled this adds one no-op span lookup per
        draw; enabled, it records the same per-draw deltas the profiler
        does, as ``gpu.draw`` span attributes.
        """
        draw_span = obs_spans.span("gpu.draw", "gpu")
        if not draw_span:
            self._process_draw_impl(draw, fstats, fragment_stages)
            return
        memory_before = self.memory.total_bytes
        before = (
            fstats.indices,
            fstats.triangles_traversed,
            fstats.fragments_rasterized,
            fstats.fragments_shaded,
            fstats.fragments_blended,
            fstats.fragment_instructions,
            fstats.bilinear_samples,
        )
        try:
            self._process_draw_impl(draw, fstats, fragment_stages)
        finally:
            state = self.machine.state
            draw_span.set("frame", fstats.frame)
            draw_span.set("mesh", draw.mesh)
            draw_span.set("vertex_program", state.vertex_program)
            draw_span.set("fragment_program", state.fragment_program)
            draw_span.set("indices", fstats.indices - before[0])
            draw_span.set(
                "triangles_traversed", fstats.triangles_traversed - before[1]
            )
            draw_span.set(
                "fragments_rasterized",
                fstats.fragments_rasterized - before[2],
            )
            draw_span.set(
                "fragments_shaded", fstats.fragments_shaded - before[3]
            )
            draw_span.set(
                "fragments_blended", fstats.fragments_blended - before[4]
            )
            draw_span.set(
                "fragment_instructions",
                fstats.fragment_instructions - before[5],
            )
            draw_span.set(
                "bilinear_samples", fstats.bilinear_samples - before[6]
            )
            draw_span.set(
                "memory_bytes", int(self.memory.total_bytes - memory_before)
            )
            draw_span.__exit__(None, None, None)

    def _process_draw_impl(
        self, draw: Draw, fstats: FrameGpuStats, fragment_stages: bool
    ) -> None:
        state = self.machine.state
        mesh = self.meshes[draw.mesh]
        vp = self.programs.get(state.vertex_program or "")
        constants = self._gather_constants()
        with obs_spans.span("gpu.stage.vertex", "gpu"):
            vres = self.vertex_stage.process(mesh, draw, vp, constants)

        fstats.indices += int(vres.indices.size)
        fstats.vertex_cache_references += vres.cache_references
        fstats.vertex_cache_hits += vres.cache_hits
        fstats.vertices_shaded += vres.vertices_shaded
        fstats.vertex_instructions += vres.instructions

        with obs_spans.span("gpu.stage.geometry", "gpu"):
            triangles = assemble_triangles(vres.remap, draw.primitive)
            ccr = clip_and_cull(
                vres.clip_positions,
                triangles,
                vres.uv,
                vres.color,
                self.config.width,
                self.config.height,
                cull=state.cull,
            )
        fstats.triangles_assembled += ccr.assembled
        fstats.triangles_clipped += ccr.clipped
        fstats.triangles_culled += ccr.culled
        fstats.triangles_traversed += ccr.traversed
        if not fragment_stages or ccr.triangles.count == 0:
            return

        fp = self.programs.get(state.fragment_program or "")
        if state.fragment_program and fp is None:
            raise KeyError(f"fragment program {state.fragment_program!r} unknown")
        early_z = fp is None or not fp.uses_kill
        for unit, name in state.textures:
            self.texture_unit.bind(unit, name)

        hz_on = (
            self.config.hierarchical_z
            and state.hierarchical_z
            and state.depth_test
            and state.depth_func in ("less", "lequal", "equal")
        )

        if self.config.fused and self.config.vectorized:
            self._fused_executor().enqueue(
                ccr.triangles, fp, state, fstats, early_z, hz_on
            )
        elif self.config.vectorized:
            self._fragment_stages_stream(
                ccr.triangles, fp, state, fstats, early_z, hz_on
            )
        else:
            self._fragment_stages_classic(
                ccr.triangles, fp, state, fstats, early_z, hz_on
            )

    def _fragment_stages_classic(
        self, tris, fp, state, fstats: FrameGpuStats, early_z: bool, hz_on: bool
    ) -> None:
        """Per-triangle reference path (``GpuConfig(vectorized=False)``)."""
        pending: list[tuple[QuadBatch, np.ndarray]] = []
        # One span over the whole interleaved raster/HZ/Z loop — per-triangle
        # spans would dominate the work they measure.
        raster_span = obs_spans.span("gpu.stage.raster_z", "gpu")
        for t in range(tris.count):
            qb = rasterize_triangle(
                tris.xy[t],
                tris.z[t],
                tris.inv_w[t],
                tris.uv[t],
                tris.color[t],
                self.config.width,
                self.config.height,
                front=bool(tris.front[t]),
            )
            if qb is None:
                continue
            fstats.fragments_rasterized += qb.fragment_count
            fstats.quads_rasterized += qb.quad_count
            fstats.complete_quads_rasterized += qb.complete_quads

            alive = qb.cover
            if hz_on:
                z_for_min = np.where(alive, qb.z, np.inf)
                z_min = z_for_min.min(axis=1)
                if self.config.hz_min_max and state.depth_func == "equal":
                    z_for_max = np.where(alive, qb.z, -np.inf)
                    culled = self.fb.hz_minmax_equal_cull_mask(
                        qb.qx, qb.qy, z_min, z_for_max.max(axis=1)
                    )
                else:
                    culled = self.fb.hz_cull_mask(qb.qx, qb.qy, z_min)
                if self.config.hz_stencil and state.stencil_test:
                    culled = culled | self.fb.hz_stencil_cull_mask(
                        qb.qx, qb.qy, state.stencil_ref, state.stencil_func
                    )
                fstats.count_quad_fates(QuadFate.HZ, int(culled.sum()))
                if culled.all():
                    continue
                qb = qb.select(~culled)
                alive = qb.cover

            if early_z:
                fstats.fragments_zstencil += int(alive.sum())
                fstats.quads_zstencil += qb.quad_count
                fstats.complete_quads_zstencil += int(alive.all(axis=1).sum())
                zres = self.zstencil.process(qb, state, alive)
                if state.depth_write:
                    self.zstencil.update_hz(qb, zres.wrote)
                surviving = zres.pass_mask.any(axis=1)
                fstats.count_quad_fates(
                    QuadFate.ZSTENCIL, int((~surviving).sum())
                )
                if surviving.any():
                    pending.append((qb.select(surviving), zres.pass_mask[surviving]))
            else:
                pending.append((qb, alive))

        if raster_span:
            raster_span.__exit__(None, None, None)
        if not pending:
            return
        with obs_spans.span("gpu.stage.shade", "gpu"):
            self._shade_and_write(pending, fp, state, fstats, early_z)

    def _shade_and_write(
        self,
        pending: list[tuple[QuadBatch, np.ndarray]],
        fp: ShaderProgram | None,
        state,
        fstats: FrameGpuStats,
        early_z: bool,
    ) -> None:
        """Batched fragment shading, then (for late Z) tests, then color."""
        lanes_alive = [alive for _, alive in pending]
        all_alive = np.concatenate([a.reshape(-1) for a in lanes_alive])

        if fp is not None:
            uv = np.concatenate([qb.uv.reshape(-1, 2) for qb, _ in pending])
            colors_in = np.concatenate([qb.color.reshape(-1, 4) for qb, _ in pending])
            n = uv.shape[0]
            v1 = np.zeros((n, 4))
            v1[:, :2] = uv
            v1[:, 3] = 1.0
            self.texture_unit.set_coverage(all_alive)
            tex_before = self.texture_unit.stats.reset()
            del tex_before
            result = self.fragment_interp.run(
                fp, inputs={1: v1, 2: colors_in}, count=n
            )
            self.texture_unit.set_coverage(None)
            tex_stats = self.texture_unit.stats.reset()
            shaded = int(all_alive.sum())
            fstats.fragments_shaded += shaded
            fstats.quads_shaded += sum(qb.quad_count for qb, _ in pending)
            fstats.fragment_instructions += fp.instruction_count * shaded
            fstats.fragment_alu_instructions += fp.alu_instruction_count * shaded
            fstats.texture_requests += tex_stats.requests
            fstats.bilinear_samples += tex_stats.bilinear_samples
            out_color = result.output(0)
            kill = result.kill_mask
        else:
            out_color = np.concatenate([qb.color.reshape(-1, 4) for qb, _ in pending])
            kill = np.zeros(all_alive.shape[0], dtype=bool)

        offset = 0
        for qb, alive in pending:
            count = qb.quad_count * 4
            q_color = out_color[offset : offset + count].reshape(-1, 4, 4)
            q_kill = kill[offset : offset + count].reshape(-1, 4)
            offset += count

            live = alive & ~q_kill
            if fp is not None and fp.uses_kill:
                dead = ~live.any(axis=1)
                fstats.count_quad_fates(QuadFate.ALPHA, int(dead.sum()))
                if dead.all():
                    continue
                keep = ~dead
                qb = qb.select(keep)
                live = live[keep]
                q_color = q_color[keep]

            if not early_z:
                fstats.fragments_zstencil += int(live.sum())
                fstats.quads_zstencil += qb.quad_count
                fstats.complete_quads_zstencil += int(live.all(axis=1).sum())
                zres = self.zstencil.process(qb, state, live)
                if state.depth_write:
                    self.zstencil.update_hz(qb, zres.wrote)
                surviving = zres.pass_mask.any(axis=1)
                fstats.count_quad_fates(QuadFate.ZSTENCIL, int((~surviving).sum()))
                if not surviving.any():
                    continue
                qb = qb.select(surviving)
                live = zres.pass_mask[surviving]
                q_color = q_color[surviving]

            if not state.color_mask:
                fstats.count_quad_fates(QuadFate.COLOR_MASK, qb.quad_count)
                continue
            xs, ys = qb.pixel_coords()
            self.color_stage.process(
                xs, ys, qb.qx, qb.qy, q_color, live, state.blend
            )
            fstats.fragments_blended += int(live.sum())
            fstats.quads_blended += qb.quad_count
            fstats.count_quad_fates(QuadFate.BLENDED, qb.quad_count)

    # -- QuadStream (draw-level vectorized) path -------------------------
    def _fragment_stages_stream(
        self, tris, fp, state, fstats: FrameGpuStats, early_z: bool, hz_on: bool
    ) -> None:
        """Draw-level vectorized fragment pipeline (``vectorized=True``).

        Rasterizes the whole draw into one :class:`QuadStream` and runs the
        downstream stages over the stream.  Statistics, quad fates, cache
        reference streams, and framebuffer contents are bit-identical to
        :meth:`_fragment_stages_classic` (see ``tests/test_quadstream.py``).
        """
        with obs_spans.span("gpu.stage.raster", "gpu"):
            stream = rasterize_draw(tris, self.config.width, self.config.height)
        if self._region_log is not None:
            self._region_log.append(
                None if stream is None else stream.region_footprint()
            )
        if stream is None:
            return
        fstats.fragments_rasterized += stream.fragment_count
        fstats.quads_rasterized += stream.quad_count
        fstats.complete_quads_rasterized += stream.complete_quads

        if early_z:
            with obs_spans.span("gpu.stage.zstencil", "gpu"):
                surv, pass_mask = self._zstencil_stream(
                    stream, stream.cover, state, fstats, hz_on
                )
            if not surv.any():
                return
            stream = stream.select(surv)
            live = pass_mask[surv]
        else:
            # Late Z: HZ state cannot change before shading (updates happen
            # in the Z/stencil stage below), so one cull pass suffices.
            if hz_on:
                culled = self._hz_cull(
                    stream.qx, stream.qy, stream.z, stream.cover, state, fstats
                )
                if culled.all():
                    return
                if culled.any():
                    stream = stream.select(~culled)
            live = stream.cover
        with obs_spans.span("gpu.stage.shade", "gpu"):
            self._shade_and_write_stream(
                stream, live, fp, state, fstats, early_z
            )

    def _hz_cull(self, qx, qy, z, cover, state, fstats: FrameGpuStats):
        """Hierarchical-Z cull mask for a quad wave (counts HZ quad fates)."""
        z_for_min = np.where(cover, z, np.inf)
        z_min = z_for_min.min(axis=1)
        if self.config.hz_min_max and state.depth_func == "equal":
            z_for_max = np.where(cover, z, -np.inf)
            culled = self.fb.hz_minmax_equal_cull_mask(
                qx, qy, z_min, z_for_max.max(axis=1)
            )
        else:
            culled = self.fb.hz_cull_mask(qx, qy, z_min)
        if self.config.hz_stencil and state.stencil_test:
            culled = culled | self.fb.hz_stencil_cull_mask(
                qx, qy, state.stencil_ref, state.stencil_func
            )
        fstats.count_quad_fates(QuadFate.HZ, int(culled.sum()))
        return culled

    def _zstencil_stream(
        self,
        stream: QuadStream,
        alive: np.ndarray,
        state,
        fstats: FrameGpuStats,
        hz_on: bool,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Rank-ordered Z/stencil over a draw's stream.

        Returns ``(survivors, pass_mask)`` over the input stream.  When the
        draw can write depth or stencil, quads are processed in block-rank
        waves (see :func:`~repro.gpu.zstencil.block_ranks`) so every wave is
        hazard-free and each framebuffer block sees its triangles in
        submission order; HZ culling and HZ updates interleave with the
        waves exactly as the per-triangle path interleaves them per block.
        Cache accounting is deferred to one original-order pass at the end.
        """
        n = stream.quad_count
        pass_mask = np.zeros((n, 4), dtype=bool)
        wrote = np.zeros(n, dtype=bool)
        entered = np.zeros(n, dtype=bool)
        writes_possible = (state.depth_test and state.depth_write) or (
            state.stencil_test and state.stencil_write
        )
        if writes_possible:
            bx, by = self.fb.quad_block_coords(stream.qx, stream.qy)
            ranks = block_ranks(self.fb.block_line_index(bx, by), stream.tri)
            order = np.argsort(ranks, kind="stable")
            counts = np.bincount(ranks)
            bounds = np.concatenate(([0], np.cumsum(counts)))
            waves = [
                order[bounds[r] : bounds[r + 1]] for r in range(counts.size)
            ]
        else:
            waves = [np.arange(n)]

        for idx in waves:
            qx, qy, z = stream.qx[idx], stream.qy[idx], stream.z[idx]
            wave_alive = alive[idx]
            if hz_on:
                culled = self._hz_cull(
                    qx, qy, z, stream.cover[idx], state, fstats
                )
                if culled.all():
                    continue
                if culled.any():
                    keep = ~culled
                    idx = idx[keep]
                    qx, qy, z = qx[keep], qy[keep], z[keep]
                    wave_alive = wave_alive[keep]
            entered[idx] = True
            fstats.fragments_zstencil += int(wave_alive.sum())
            fstats.quads_zstencil += int(idx.size)
            fstats.complete_quads_zstencil += int(wave_alive.all(axis=1).sum())
            zres = self.zstencil.test_write(
                qx, qy, z, stream.front[idx], state, wave_alive
            )
            pass_mask[idx] = zres.pass_mask
            wrote[idx] = zres.wrote
            if state.depth_write:
                self.zstencil.update_hz_quads(qx, qy, zres.wrote)

        self.zstencil.account_stream(
            stream.qx[entered], stream.qy[entered], wrote[entered]
        )
        surv = entered & pass_mask.any(axis=1)
        fstats.count_quad_fates(
            QuadFate.ZSTENCIL, int(entered.sum() - surv.sum())
        )
        return surv, pass_mask

    def _shade_and_write_stream(
        self,
        stream: QuadStream,
        alive: np.ndarray,
        fp: ShaderProgram | None,
        state,
        fstats: FrameGpuStats,
        early_z: bool,
    ) -> None:
        """Stream analogue of :meth:`_shade_and_write`."""
        all_alive = alive.reshape(-1)

        if fp is not None:
            uv = stream.uv.reshape(-1, 2)
            colors_in = stream.color.reshape(-1, 4)
            n = uv.shape[0]
            v1 = np.zeros((n, 4))
            v1[:, :2] = uv
            v1[:, 3] = 1.0
            self.texture_unit.set_coverage(all_alive)
            tex_before = self.texture_unit.stats.reset()
            del tex_before
            result = self.fragment_interp.run(
                fp, inputs={1: v1, 2: colors_in}, count=n
            )
            self.texture_unit.set_coverage(None)
            tex_stats = self.texture_unit.stats.reset()
            shaded = int(all_alive.sum())
            fstats.fragments_shaded += shaded
            fstats.quads_shaded += stream.quad_count
            fstats.fragment_instructions += fp.instruction_count * shaded
            fstats.fragment_alu_instructions += fp.alu_instruction_count * shaded
            fstats.texture_requests += tex_stats.requests
            fstats.bilinear_samples += tex_stats.bilinear_samples
            out_color = result.output(0)
            kill = result.kill_mask
        else:
            out_color = stream.color.reshape(-1, 4)
            kill = np.zeros(all_alive.shape[0], dtype=bool)

        q_color = out_color.reshape(-1, 4, 4)
        q_kill = kill.reshape(-1, 4)
        live = alive & ~q_kill

        if fp is not None and fp.uses_kill:
            dead = ~live.any(axis=1)
            fstats.count_quad_fates(QuadFate.ALPHA, int(dead.sum()))
            if dead.all():
                return
            if dead.any():
                keep = ~dead
                stream = stream.select(keep)
                live = live[keep]
                q_color = q_color[keep]

        if not early_z:
            surv, pass_mask = self._zstencil_stream(
                stream, live, state, fstats, hz_on=False
            )
            if not surv.any():
                return
            stream = stream.select(surv)
            live = pass_mask[surv]
            q_color = q_color[surv]

        if not state.color_mask:
            fstats.count_quad_fates(QuadFate.COLOR_MASK, stream.quad_count)
            return

        # Blend order within a draw matters (and the color cache's
        # eviction-time uniformity checks observe mid-draw framebuffer
        # state), so the color stage runs per traversal-order triangle
        # group — the exact call sequence of the per-triangle path.
        xs, ys = stream.pixel_coords()
        tri = stream.tri
        n = stream.quad_count
        starts = np.nonzero(np.r_[True, tri[1:] != tri[:-1]])[0]
        ends = np.r_[starts[1:], n]
        self.color_stage.process_groups(
            xs, ys, stream.qx, stream.qy, q_color, live, state.blend,
            starts, ends,
        )
        fstats.fragments_blended += int(live.sum())
        fstats.quads_blended += n
        fstats.count_quad_fates(QuadFate.BLENDED, n)
