"""Z and stencil test stage.

Performs the per-fragment depth and stencil tests, the stencil update
operations (including the two-sided wrap ops the Doom3/Quake4 shadow-volume
algorithm relies on), the z-buffer writes, and the Z/stencil cache with
fast-clear and plane compression — the machinery behind Tables IX, XIV, XV
and XVII.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api.state import RenderState, StencilSide
from repro.gpu.caches import Cache
from repro.gpu.config import GpuConfig
from repro.gpu.framebuffer import BlockState, Framebuffer
from repro.gpu.memory import MemoryController
from repro.gpu.rasterizer import QuadBatch
from repro.gpu.stats import MemClient


@dataclass
class ZStencilResult:
    pass_mask: np.ndarray  # (Q, 4) lanes passing both tests
    wrote: np.ndarray  # (Q,) quads that modified z or stencil


class ZStencilStage:
    def __init__(
        self, config: GpuConfig, framebuffer: Framebuffer, memory: MemoryController
    ):
        self.config = config
        self.fb = framebuffer
        self.memory = memory
        self.cache = Cache(config.zstencil_cache)

    def invalidate_cache(self) -> None:
        """Drop cache contents without writeback (fast clear kills the data)."""
        for cache_set in self.cache._sets:
            cache_set.clear()

    def process(
        self, quads: QuadBatch, state: RenderState, alive: np.ndarray
    ) -> ZStencilResult:
        """Test/update the framebuffer for one triangle's quads.

        ``alive``: (Q, 4) lanes still live entering the stage.  Returns the
        surviving lanes and accounts all cache/memory traffic.
        """
        fb = self.fb
        xs, ys = quads.pixel_coords()
        cur_z = fb.z[ys, xs]
        cur_s = fb.stencil[ys, xs]

        if state.depth_test:
            z_pass = _DEPTH_FUNCS[state.depth_func](quads.z, cur_z)
        else:
            z_pass = np.ones_like(alive)
        if state.stencil_test:
            s_pass = _STENCIL_FUNCS[state.stencil_func](cur_s, state.stencil_ref)
        else:
            s_pass = np.ones_like(alive)

        passed = alive & z_pass & s_pass
        wrote_any = np.zeros(quads.qx.shape[0], dtype=bool)

        # Stencil updates.
        if state.stencil_test and state.stencil_write:
            side = state.stencil_front if quads.front else state.stencil_back
            new_s = cur_s.copy()
            sfail = alive & ~s_pass
            zfail = alive & s_pass & ~z_pass
            zpass = passed
            for mask, op in (
                (sfail, side.sfail),
                (zfail, side.zfail),
                (zpass, side.zpass),
            ):
                if op == "keep" or not mask.any():
                    continue
                new_s[mask] = _apply_stencil_op(op, cur_s[mask], state.stencil_ref)
            changed = new_s != cur_s
            if changed.any():
                fb.stencil[ys[changed], xs[changed]] = new_s[changed]
                wrote_any |= changed.any(axis=1)
                touched = changed.any(axis=1)
                bx, by = fb.quad_block_coords(
                    quads.qx[touched], quads.qy[touched]
                )
                fb.note_stencil_write(bx, by)

        # Depth writes.
        if state.depth_test and state.depth_write:
            write_mask = passed
            if write_mask.any():
                fb.z[ys[write_mask], xs[write_mask]] = quads.z[write_mask]
                wrote_any |= write_mask.any(axis=1)

        self._account_cache(quads, wrote_any)
        return ZStencilResult(pass_mask=passed, wrote=wrote_any)

    def update_hz(self, quads: QuadBatch, wrote: np.ndarray) -> None:
        """Refresh the on-die HZ max for blocks whose z changed."""
        if not wrote.any():
            return
        bx, by = self.fb.quad_block_coords(quads.qx[wrote], quads.qy[wrote])
        packed = np.unique(by.astype(np.int64) * self.fb.blocks_x + bx)
        self.fb.update_hz(packed % self.fb.blocks_x, packed // self.fb.blocks_x)

    def _account_cache(self, quads: QuadBatch, wrote: np.ndarray) -> None:
        fb = self.fb
        bx, by = fb.quad_block_coords(quads.qx, quads.qy)
        lines = fb.block_line_index(bx, by)
        result = self.cache.access_runs(lines, wrote)
        line_bytes = self.config.zstencil_cache.line_bytes
        # Miss fills: cost depends on the block's in-memory state.
        for line in result.miss_lines:
            y, x = divmod(line, fb.blocks_x)
            block_state = fb.z_block_state[y, x]
            if block_state == BlockState.CLEARED and self.config.z_fast_clear:
                continue
            if block_state == BlockState.COMPRESSED and self.config.z_compression:
                self.memory.read(MemClient.ZSTENCIL, line_bytes // 2)
            else:
                self.memory.read(MemClient.ZSTENCIL, line_bytes)
        # Dirty evictions: try to compress the block being written back.
        for addr in result.dirty_evictions:
            line = addr // line_bytes
            y, x = divmod(line, fb.blocks_x)
            if self.config.z_compression and fb.z_block_compressible(x, y):
                self.memory.write(MemClient.ZSTENCIL, line_bytes // 2)
                fb.z_block_state[y, x] = BlockState.COMPRESSED
            else:
                self.memory.write(MemClient.ZSTENCIL, line_bytes)
                fb.z_block_state[y, x] = BlockState.UNCOMPRESSED


def _apply_stencil_op(op: str, values: np.ndarray, ref: int) -> np.ndarray:
    if op == "zero":
        return np.zeros_like(values)
    if op == "replace":
        return np.full_like(values, ref)
    if op == "incr_wrap":
        return (values + 1) % 256
    if op == "decr_wrap":
        return (values - 1) % 256
    raise ValueError(f"unknown stencil op {op!r}")


_DEPTH_FUNCS = {
    "never": lambda new, cur: np.zeros_like(new, dtype=bool),
    "less": lambda new, cur: new < cur,
    "lequal": lambda new, cur: new <= cur,
    "equal": lambda new, cur: np.abs(new - cur) <= 1e-7,
    "always": lambda new, cur: np.ones_like(new, dtype=bool),
}

_STENCIL_FUNCS = {
    "always": lambda cur, ref: np.ones_like(cur, dtype=bool),
    "never": lambda cur, ref: np.zeros_like(cur, dtype=bool),
    "equal": lambda cur, ref: cur == ref,
    "notequal": lambda cur, ref: cur != ref,
}
