"""Z and stencil test stage.

Performs the per-fragment depth and stencil tests, the stencil update
operations (including the two-sided wrap ops the Doom3/Quake4 shadow-volume
algorithm relies on), the z-buffer writes, and the Z/stencil cache with
fast-clear and plane compression — the machinery behind Tables IX, XIV, XV
and XVII.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api.state import RenderState, StencilSide
from repro.gpu.caches import Cache
from repro.gpu.config import GpuConfig
from repro.gpu.framebuffer import BlockState, Framebuffer
from repro.gpu.memory import MemoryController
from repro.gpu.rasterizer import _QUAD_DX, _QUAD_DY, QuadBatch
from repro.gpu.stats import MemClient


@dataclass
class ZStencilResult:
    pass_mask: np.ndarray  # (Q, 4) lanes passing both tests
    wrote: np.ndarray  # (Q,) quads that modified z or stencil


def block_ranks(block: np.ndarray, tri: np.ndarray) -> np.ndarray:
    """Per-quad wave index for hazard-free vectorized Z/stencil.

    ``rank(q)`` = number of *distinct earlier triangles* with a quad in the
    same framebuffer block as ``q``.  Within one rank, all quads sharing a
    block belong to a single triangle (so a vectorized read-test-write pass
    is race-free), and per block the ranks replay triangles in submission
    order — which is exactly the ordering the per-triangle reference path
    gives each block's depth/stencil state.

    ``tri`` must be non-decreasing within each block's quads (true for a
    :class:`~repro.gpu.rasterizer.QuadStream`, which is triangle-ordered).
    """
    n = block.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    order = np.argsort(block, kind="stable")
    sb = block[order]
    st = tri[order]
    new_block = np.empty(n, dtype=bool)
    new_block[0] = True
    np.not_equal(sb[1:], sb[:-1], out=new_block[1:])
    new_tri = new_block.copy()
    new_tri[1:] |= st[1:] != st[:-1]
    group = np.cumsum(new_tri)  # 1-based id of each (block, triangle) run
    group_at_block_start = np.maximum.accumulate(np.where(new_block, group, 0))
    ranks = np.empty(n, dtype=np.int64)
    ranks[order] = group - group_at_block_start
    return ranks


class ZStencilStage:
    def __init__(
        self, config: GpuConfig, framebuffer: Framebuffer, memory: MemoryController
    ):
        self.config = config
        self.fb = framebuffer
        self.memory = memory
        self.cache = Cache(config.zstencil_cache)

    def invalidate_cache(self) -> None:
        """Drop cache contents without writeback (fast clear kills the data)."""
        for cache_set in self.cache._sets:
            cache_set.clear()

    def process(
        self, quads: QuadBatch, state: RenderState, alive: np.ndarray
    ) -> ZStencilResult:
        """Test/update the framebuffer for one triangle's quads.

        ``alive``: (Q, 4) lanes still live entering the stage.  Returns the
        surviving lanes and accounts all cache/memory traffic.
        """
        fb = self.fb
        xs, ys = quads.pixel_coords()
        cur_z = fb.z[ys, xs]
        cur_s = fb.stencil[ys, xs]

        if state.depth_test:
            z_pass = _DEPTH_FUNCS[state.depth_func](quads.z, cur_z)
        else:
            z_pass = np.ones_like(alive)
        if state.stencil_test:
            s_pass = _STENCIL_FUNCS[state.stencil_func](cur_s, state.stencil_ref)
        else:
            s_pass = np.ones_like(alive)

        passed = alive & z_pass & s_pass
        wrote_any = np.zeros(quads.qx.shape[0], dtype=bool)

        # Stencil updates.
        if state.stencil_test and state.stencil_write:
            side = state.stencil_front if quads.front else state.stencil_back
            new_s = cur_s.copy()
            sfail = alive & ~s_pass
            zfail = alive & s_pass & ~z_pass
            zpass = passed
            for mask, op in (
                (sfail, side.sfail),
                (zfail, side.zfail),
                (zpass, side.zpass),
            ):
                if op == "keep" or not mask.any():
                    continue
                new_s[mask] = _apply_stencil_op(op, cur_s[mask], state.stencil_ref)
            changed = new_s != cur_s
            if changed.any():
                fb.stencil[ys[changed], xs[changed]] = new_s[changed]
                wrote_any |= changed.any(axis=1)
                touched = changed.any(axis=1)
                bx, by = fb.quad_block_coords(
                    quads.qx[touched], quads.qy[touched]
                )
                fb.note_stencil_write(bx, by)

        # Depth writes.
        if state.depth_test and state.depth_write:
            write_mask = passed
            if write_mask.any():
                fb.z[ys[write_mask], xs[write_mask]] = quads.z[write_mask]
                wrote_any |= write_mask.any(axis=1)

        self._account_cache(quads, wrote_any)
        return ZStencilResult(pass_mask=passed, wrote=wrote_any)

    def test_write(
        self,
        qx: np.ndarray,
        qy: np.ndarray,
        z: np.ndarray,
        front: np.ndarray,
        state: RenderState,
        alive: np.ndarray,
    ) -> ZStencilResult:
        """Test/update the framebuffer for one hazard-free quad wave.

        Like :meth:`process` but over plain stream arrays with a *per-quad*
        front-facing flag, and without cache accounting — the vectorized
        pipeline accounts a draw's whole post-HZ stream once, in original
        order, via :meth:`account_stream`.  Callers must guarantee the wave
        is free of same-pixel hazards (see :func:`block_ranks`).
        """
        fb = self.fb
        xs = qx[:, None] * 2 + _QUAD_DX[None, :]
        ys = qy[:, None] * 2 + _QUAD_DY[None, :]
        cur_z = fb.z[ys, xs]
        cur_s = fb.stencil[ys, xs]

        if state.depth_test:
            z_pass = _DEPTH_FUNCS[state.depth_func](z, cur_z)
        else:
            z_pass = np.ones_like(alive)
        if state.stencil_test:
            s_pass = _STENCIL_FUNCS[state.stencil_func](cur_s, state.stencil_ref)
        else:
            s_pass = np.ones_like(alive)

        passed = alive & z_pass & s_pass
        wrote_any = np.zeros(qx.shape[0], dtype=bool)

        if state.stencil_test and state.stencil_write:
            new_s = cur_s.copy()
            sfail = alive & ~s_pass
            zfail = alive & s_pass & ~z_pass
            for side_sel, side in (
                (front, state.stencil_front),
                (~front, state.stencil_back),
            ):
                if not side_sel.any():
                    continue
                for mask, op in (
                    (sfail, side.sfail),
                    (zfail, side.zfail),
                    (passed, side.zpass),
                ):
                    if op == "keep":
                        continue
                    m = mask & side_sel[:, None]
                    if not m.any():
                        continue
                    new_s[m] = _apply_stencil_op(op, cur_s[m], state.stencil_ref)
            changed = new_s != cur_s
            if changed.any():
                fb.stencil[ys[changed], xs[changed]] = new_s[changed]
                touched = changed.any(axis=1)
                wrote_any |= touched
                bx, by = fb.quad_block_coords(qx[touched], qy[touched])
                fb.note_stencil_write(bx, by)

        if state.depth_test and state.depth_write:
            write_mask = passed
            if write_mask.any():
                fb.z[ys[write_mask], xs[write_mask]] = z[write_mask]
                wrote_any |= write_mask.any(axis=1)

        return ZStencilResult(pass_mask=passed, wrote=wrote_any)

    def update_hz(self, quads: QuadBatch, wrote: np.ndarray) -> None:
        """Refresh the on-die HZ max for blocks whose z changed."""
        self.update_hz_quads(quads.qx, quads.qy, wrote)

    def update_hz_quads(
        self, qx: np.ndarray, qy: np.ndarray, wrote: np.ndarray
    ) -> None:
        """:meth:`update_hz` over plain quad-coordinate arrays."""
        if not wrote.any():
            return
        bx, by = self.fb.quad_block_coords(qx[wrote], qy[wrote])
        packed = np.unique(by.astype(np.int64) * self.fb.blocks_x + bx)
        self.fb.update_hz(packed % self.fb.blocks_x, packed // self.fb.blocks_x)

    def account_stream(
        self, qx: np.ndarray, qy: np.ndarray, wrote: np.ndarray
    ) -> None:
        """Cache/memory accounting for a draw's post-HZ stream, in order.

        The per-triangle path issues one :meth:`Cache.access_runs` call per
        triangle; because both stream methods collapse consecutive duplicate
        lines into one access (counted as hits), splitting or merging the
        reference stream at any boundary yields the identical hit/miss/
        eviction sequence — so one deferred call over the whole draw matches
        the baseline exactly.

        One deliberate approximation: dirty evictions probe
        ``z_block_compressible`` against the *end-of-draw* z contents rather
        than the mid-draw contents the per-triangle path would see, which
        can flip a writeback between compressed and raw size.  This affects
        only z memory byte totals (~0.4% observed), never hit/miss counts,
        statistics, quad fates, or framebuffer contents.
        """
        fb = self.fb
        bx, by = fb.quad_block_coords(qx, qy)
        lines = fb.block_line_index(bx, by)
        self._account_result(self.cache.access_runs(lines, wrote))

    def _account_cache(self, quads: QuadBatch, wrote: np.ndarray) -> None:
        fb = self.fb
        bx, by = fb.quad_block_coords(quads.qx, quads.qy)
        lines = fb.block_line_index(bx, by)
        self._account_result(self.cache.access_runs(lines, wrote))

    def _account_result(self, result) -> None:
        fb = self.fb
        config = self.config
        line_bytes = config.zstencil_cache.line_bytes
        # Miss fills: cost depends on the block's in-memory state.  The
        # whole batch reads states up front — the miss loop never writes
        # them, so this matches the per-line walk exactly.
        misses = np.asarray(result.miss_lines, dtype=np.int64)
        if misses.size:
            ys, xs = np.divmod(misses, fb.blocks_x)
            states = fb.z_block_state[ys, xs]
            nbytes = np.full(misses.size, line_bytes, dtype=np.int64)
            if config.z_compression:
                nbytes[states == BlockState.COMPRESSED] = line_bytes // 2
            if config.z_fast_clear:
                nbytes[states == BlockState.CLEARED] = 0
            self.memory.read(MemClient.ZSTENCIL, int(nbytes.sum()))
        # Dirty evictions: try to compress the block being written back.
        # Compressibility probes only read the z plane, which accounting
        # never touches, so they batch exactly too.
        evictions = np.asarray(result.dirty_evictions, dtype=np.int64)
        if evictions.size:
            lines = evictions // line_bytes
            ys, xs = np.divmod(lines, fb.blocks_x)
            if config.z_compression:
                compressible = fb.z_blocks_compressible(xs, ys)
            else:
                compressible = np.zeros(lines.size, dtype=bool)
            nbytes = np.where(compressible, line_bytes // 2, line_bytes)
            self.memory.write(MemClient.ZSTENCIL, int(nbytes.sum()))
            fb.z_block_state[ys[compressible], xs[compressible]] = (
                BlockState.COMPRESSED
            )
            fb.z_block_state[ys[~compressible], xs[~compressible]] = (
                BlockState.UNCOMPRESSED
            )


def _apply_stencil_op(op: str, values: np.ndarray, ref: int) -> np.ndarray:
    if op == "zero":
        return np.zeros_like(values)
    if op == "replace":
        return np.full_like(values, ref)
    if op == "incr_wrap":
        return (values + 1) % 256
    if op == "decr_wrap":
        return (values - 1) % 256
    raise ValueError(f"unknown stencil op {op!r}")


_DEPTH_FUNCS = {
    "never": lambda new, cur: np.zeros_like(new, dtype=bool),
    "less": lambda new, cur: new < cur,
    "lequal": lambda new, cur: new <= cur,
    "equal": lambda new, cur: np.abs(new - cur) <= 1e-7,
    "always": lambda new, cur: np.ones_like(new, dtype=bool),
}

_STENCIL_FUNCS = {
    "always": lambda cur, ref: np.ones_like(cur, dtype=bool),
    "never": lambda cur, ref: np.zeros_like(cur, dtype=bool),
    "equal": lambda cur, ref: cur == ref,
    "notequal": lambda cur, ref: cur != ref,
}
