"""GDDR memory controller model: per-client byte accounting.

Every stage routes its memory traffic through here tagged with a
:class:`~repro.gpu.stats.MemClient`, which is exactly the attribution the
paper's Tables XV and XVI report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.stats import MemClient


@dataclass
class MemoryController:
    """Byte counters per client and direction."""

    reads: dict[MemClient, int] = field(
        default_factory=lambda: {c: 0 for c in MemClient}
    )
    writes: dict[MemClient, int] = field(
        default_factory=lambda: {c: 0 for c in MemClient}
    )

    def read(self, client: MemClient, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("negative read size")
        self.reads[client] += nbytes

    def write(self, client: MemClient, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("negative write size")
        self.writes[client] += nbytes

    # -- Table XV ---------------------------------------------------------
    @property
    def total_read_bytes(self) -> int:
        return sum(self.reads.values())

    @property
    def total_write_bytes(self) -> int:
        return sum(self.writes.values())

    @property
    def total_bytes(self) -> int:
        return self.total_read_bytes + self.total_write_bytes

    @property
    def read_fraction(self) -> float:
        total = self.total_bytes
        return self.total_read_bytes / total if total else 0.0

    def bytes_per_frame(self, frames: int) -> float:
        return self.total_bytes / frames if frames else 0.0

    def bandwidth_at_fps(self, frames: int, fps: float = 100.0) -> float:
        """Sustained bytes/second needed to render at ``fps`` (Table XV)."""
        return self.bytes_per_frame(frames) * fps

    # -- Table XVI --------------------------------------------------------
    def client_bytes(self, client: MemClient) -> int:
        return self.reads[client] + self.writes[client]

    @property
    def traffic_distribution(self) -> dict[MemClient, float]:
        total = self.total_bytes
        if total == 0:
            return {c: 0.0 for c in MemClient}
        return {c: 100.0 * self.client_bytes(c) / total for c in MemClient}

    def snapshot(self) -> "MemoryController":
        """A copy of the current counters (for per-frame deltas)."""
        copy = MemoryController()
        copy.reads = dict(self.reads)
        copy.writes = dict(self.writes)
        return copy

    def delta_since(self, earlier: "MemoryController") -> "MemoryController":
        delta = MemoryController()
        for client in MemClient:
            delta.reads[client] = self.reads[client] - earlier.reads[client]
            delta.writes[client] = self.writes[client] - earlier.writes[client]
        return delta
