"""Per-draw profiler: NVPerfHUD-style bottleneck inspection.

The paper's related work surveys per-draw profiling tools (NVPerfHUD,
NVPerfKit, ATI's PIX plugins).  This module provides the equivalent for the
simulator: attach a :class:`DrawProfiler` to a :class:`GpuSimulator` and it
records one row per draw call — triangles, fragments per stage, shader
instructions, texture probes, and the memory bytes the draw moved — so the
heaviest batches of a frame can be ranked and attributed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.pipeline import GpuSimulator
from repro.gpu.stats import FrameGpuStats, MemClient
from repro.observe import metrics as obs_metrics
from repro.observe import spans as obs_spans


@dataclass
class DrawRecord:
    """One draw call's costs."""

    frame: int
    index: int  # draw order within the frame
    mesh: str
    vertex_program: str | None
    fragment_program: str | None
    indices: int = 0
    triangles_traversed: int = 0
    fragments_rasterized: int = 0
    fragments_shaded: int = 0
    fragments_blended: int = 0
    fragment_instructions: int = 0
    bilinear_samples: int = 0
    memory_bytes: int = 0

    @property
    def pass_kind(self) -> str:
        """Heuristic pass classification for stencil-shadow engines."""
        if ".vol." in self.mesh:
            return "shadow volume"
        if self.fragment_program is None:
            return "depth prepass"
        return "shading"


@dataclass
class FrameProfile:
    """All draw records of one frame plus ranking helpers."""

    frame: int
    draws: list[DrawRecord] = field(default_factory=list)

    def heaviest(self, n: int = 10, by: str = "memory_bytes") -> list[DrawRecord]:
        return sorted(self.draws, key=lambda d: getattr(d, by), reverse=True)[:n]

    def totals(self, attribute: str) -> int:
        return sum(getattr(d, attribute) for d in self.draws)

    def by_pass_kind(self) -> dict[str, int]:
        """Memory bytes attributed to each pass kind."""
        out: dict[str, int] = {}
        for d in self.draws:
            out[d.pass_kind] = out.get(d.pass_kind, 0) + d.memory_bytes
        return out


class DrawProfiler:
    """Wraps a simulator's draw processing to collect per-draw records."""

    def __init__(self, simulator: GpuSimulator):
        self.simulator = simulator
        self.frames: list[FrameProfile] = []
        self._original = simulator._process_draw
        simulator._process_draw = self._wrapped  # type: ignore[assignment]

    def detach(self) -> None:
        self.simulator._process_draw = self._original  # type: ignore[assignment]

    def __enter__(self) -> "DrawProfiler":
        return self

    def __exit__(self, *exc) -> None:
        self.detach()

    def _current_profile(self, frame_number: int) -> FrameProfile:
        if not self.frames or self.frames[-1].frame != frame_number:
            self.frames.append(FrameProfile(frame_number))
        return self.frames[-1]

    def _wrapped(self, draw, fstats: FrameGpuStats, fragment_stages: bool):
        sim = self.simulator
        state = sim.machine.state
        memory_before = sim.memory.total_bytes
        before = (
            fstats.indices,
            fstats.triangles_traversed,
            fstats.fragments_rasterized,
            fstats.fragments_shaded,
            fstats.fragments_blended,
            fstats.fragment_instructions,
            fstats.bilinear_samples,
        )
        self._original(draw, fstats, fragment_stages)
        profile = self._current_profile(fstats.frame)
        record = DrawRecord(
            frame=fstats.frame,
            index=len(profile.draws),
            mesh=draw.mesh,
            vertex_program=state.vertex_program,
            fragment_program=state.fragment_program,
            indices=fstats.indices - before[0],
            triangles_traversed=fstats.triangles_traversed - before[1],
            fragments_rasterized=fstats.fragments_rasterized - before[2],
            fragments_shaded=fstats.fragments_shaded - before[3],
            fragments_blended=fstats.fragments_blended - before[4],
            fragment_instructions=fstats.fragment_instructions - before[5],
            bilinear_samples=fstats.bilinear_samples - before[6],
            memory_bytes=sim.memory.total_bytes - memory_before,
        )
        profile.draws.append(record)
        if obs_spans.enabled():
            reg = obs_metrics.registry()
            reg.counter("profiler.draws").inc()
            reg.histogram("profiler.draw_memory_bytes").observe(
                record.memory_bytes
            )
            reg.histogram("profiler.draw_fragments_shaded").observe(
                record.fragments_shaded
            )


def records_from_spans(span_docs) -> list[DrawRecord]:
    """Rebuild :class:`DrawRecord` rows from exported ``gpu.draw`` spans.

    The pipeline's draw spans carry the same per-draw deltas the profiler
    computes, so ``repro observe --top-draws`` can rank heavy batches from
    a trace without a separate profiled re-run.  ``index`` is the draw's
    order within its frame, recovered from span order.
    """
    records: list[DrawRecord] = []
    next_index: dict[int, int] = {}
    for doc in span_docs:
        if doc.get("name") != "gpu.draw":
            continue
        attrs = doc.get("attrs") or {}
        frame = int(attrs.get("frame", -1))
        index = next_index.get(frame, 0)
        next_index[frame] = index + 1
        records.append(
            DrawRecord(
                frame=frame,
                index=index,
                mesh=str(attrs.get("mesh", "")),
                vertex_program=attrs.get("vertex_program"),
                fragment_program=attrs.get("fragment_program"),
                indices=int(attrs.get("indices", 0)),
                triangles_traversed=int(attrs.get("triangles_traversed", 0)),
                fragments_rasterized=int(
                    attrs.get("fragments_rasterized", 0)
                ),
                fragments_shaded=int(attrs.get("fragments_shaded", 0)),
                fragments_blended=int(attrs.get("fragments_blended", 0)),
                fragment_instructions=int(
                    attrs.get("fragment_instructions", 0)
                ),
                bilinear_samples=int(attrs.get("bilinear_samples", 0)),
                memory_bytes=int(attrs.get("memory_bytes", 0)),
            )
        )
    return records


def records_from_timeline(tracks: list[dict]) -> list[DrawRecord]:
    """Draw records from a merged multi-track timeline, frame-ordered."""
    records = []
    for track in tracks:
        records.extend(records_from_spans(track.get("spans", ())))
    records.sort(key=lambda r: (r.frame, r.index))
    return records


def profile_workload(workload, frames: int = 1) -> list[FrameProfile]:
    """Convenience: simulate ``frames`` of a workload with profiling on."""
    sim = workload.simulator()
    with DrawProfiler(sim) as profiler:
        sim.run_trace(workload.trace(frames=frames))
        return profiler.frames
