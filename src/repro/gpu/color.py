"""Color/blend stage: framebuffer color update, color cache, compression.

The paper notes blending is always active in the color stage for the
simulated workloads, that a large share of Doom3/Quake4 quads arrive with
the color write mask off (stencil-shadow passes), and that the fast-clear +
uniform-block compression only pays off when large screen regions stay a
single color (shadowed areas) — all of which this stage reproduces.
"""

from __future__ import annotations

import numpy as np

from repro.api.state import RenderState
from repro.gpu.caches import Cache
from repro.gpu.config import GpuConfig
from repro.gpu.framebuffer import BlockState, Framebuffer
from repro.gpu.memory import MemoryController
from repro.gpu.stats import MemClient


class ColorStage:
    def __init__(
        self, config: GpuConfig, framebuffer: Framebuffer, memory: MemoryController
    ):
        self.config = config
        self.fb = framebuffer
        self.memory = memory
        self.cache = Cache(config.color_cache)

    def invalidate_cache(self) -> None:
        """Drop contents without writeback (a color clear kills the data)."""
        for cache_set in self.cache._sets:
            cache_set.clear()

    def process(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        qx: np.ndarray,
        qy: np.ndarray,
        colors: np.ndarray,
        write_mask: np.ndarray,
        blend: str,
    ) -> None:
        """Blend ``colors`` into the framebuffer.

        ``xs``/``ys``/``colors``/``write_mask``: (Q, 4[, 4]) lane arrays;
        ``qx``/``qy``: (Q,) quad coordinates for cache accounting.  Duplicate
        pixels across quads (overdraw within a draw call) are handled
        per-mode: ``replace`` keeps submission order (last write wins),
        ``add`` accumulates order-independently, ``alpha``/``modulate`` fall
        back to sequential application.
        """
        if not write_mask.any():
            return
        fb = self.fb
        m = write_mask
        if blend == "replace":
            fb.color[ys[m], xs[m]] = colors[m]
        elif blend == "add":
            np.add.at(fb.color, (ys[m], xs[m]), colors[m])
            # Saturate like an 8-bit framebuffer (touched pixels only).
            fb.color[ys[m], xs[m]] = np.clip(fb.color[ys[m], xs[m]], 0.0, 1.0)
        elif blend == "modulate":
            np.multiply.at(fb.color, (ys[m], xs[m]), colors[m])
        elif blend == "alpha":
            flat_y, flat_x, flat_c = ys[m], xs[m], colors[m]
            for i in range(flat_y.shape[0]):
                a = flat_c[i, 3]
                dst = fb.color[flat_y[i], flat_x[i]]
                fb.color[flat_y[i], flat_x[i]] = a * flat_c[i] + (1.0 - a) * dst
        else:
            raise ValueError(f"unknown blend mode {blend!r}")
        self._account_cache(qx, qy)

    def _account_cache(self, qx: np.ndarray, qy: np.ndarray) -> None:
        fb = self.fb
        bx, by = fb.quad_block_coords(qx, qy)
        lines = fb.block_line_index(bx, by)
        result = self.cache.access_stream(lines, write=True)
        line_bytes = self.config.color_cache.line_bytes
        for line in result.miss_lines:
            y, x = divmod(line, fb.blocks_x)
            block_state = fb.color_block_state[y, x]
            if block_state == BlockState.CLEARED and self.config.color_fast_clear:
                continue
            if block_state == BlockState.COMPRESSED and self.config.color_compression:
                self.memory.read(MemClient.COLOR, line_bytes // 2)
            else:
                self.memory.read(MemClient.COLOR, line_bytes)
        for addr in result.dirty_evictions:
            self._write_back(addr // line_bytes)

    def flush(self) -> None:
        """End-of-frame writeback so the DAC can scan the finished frame."""
        for addr in self.cache.flush():
            self._write_back(addr // self.config.color_cache.line_bytes)

    def _write_back(self, line: int) -> None:
        fb = self.fb
        line_bytes = self.config.color_cache.line_bytes
        y, x = divmod(line, fb.blocks_x)
        if self.config.color_compression and fb.color_block_uniform(x, y):
            self.memory.write(MemClient.COLOR, line_bytes // 2)
            fb.color_block_state[y, x] = BlockState.COMPRESSED
        else:
            self.memory.write(MemClient.COLOR, line_bytes)
            fb.color_block_state[y, x] = BlockState.UNCOMPRESSED
