"""Color/blend stage: framebuffer color update, color cache, compression.

The paper notes blending is always active in the color stage for the
simulated workloads, that a large share of Doom3/Quake4 quads arrive with
the color write mask off (stencil-shadow passes), and that the fast-clear +
uniform-block compression only pays off when large screen regions stay a
single color (shadowed areas) — all of which this stage reproduces.
"""

from __future__ import annotations

import numpy as np

from repro.api.state import RenderState
from repro.gpu import _native
from repro.gpu.caches import Cache
from repro.gpu.config import GpuConfig
from repro.gpu.framebuffer import BlockState, Framebuffer
from repro.gpu.memory import MemoryController
from repro.gpu.stats import MemClient

_BLEND_MODES = {"replace": 0, "add": 1, "modulate": 2, "alpha": 3}


class ColorStage:
    def __init__(
        self, config: GpuConfig, framebuffer: Framebuffer, memory: MemoryController
    ):
        self.config = config
        self.fb = framebuffer
        self.memory = memory
        self.cache = Cache(config.color_cache)

    def invalidate_cache(self) -> None:
        """Drop contents without writeback (a color clear kills the data)."""
        for cache_set in self.cache._sets:
            cache_set.clear()

    def process(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        qx: np.ndarray,
        qy: np.ndarray,
        colors: np.ndarray,
        write_mask: np.ndarray,
        blend: str,
    ) -> None:
        """Blend ``colors`` into the framebuffer.

        ``xs``/``ys``/``colors``/``write_mask``: (Q, 4[, 4]) lane arrays;
        ``qx``/``qy``: (Q,) quad coordinates for cache accounting.  Duplicate
        pixels across quads (overdraw within a draw call) are handled
        per-mode: ``replace`` keeps submission order (last write wins),
        ``add`` accumulates order-independently, ``alpha``/``modulate`` fall
        back to sequential application.
        """
        if not write_mask.any():
            return
        fb = self.fb
        m = write_mask
        if blend == "replace":
            fb.color[ys[m], xs[m]] = colors[m]
        elif blend == "add":
            np.add.at(fb.color, (ys[m], xs[m]), colors[m])
            # Saturate like an 8-bit framebuffer (touched pixels only).
            fb.color[ys[m], xs[m]] = np.clip(fb.color[ys[m], xs[m]], 0.0, 1.0)
        elif blend == "modulate":
            np.multiply.at(fb.color, (ys[m], xs[m]), colors[m])
        elif blend == "alpha":
            flat_y, flat_x, flat_c = ys[m], xs[m], colors[m]
            for i in range(flat_y.shape[0]):
                a = flat_c[i, 3]
                dst = fb.color[flat_y[i], flat_x[i]]
                fb.color[flat_y[i], flat_x[i]] = a * flat_c[i] + (1.0 - a) * dst
        else:
            raise ValueError(f"unknown blend mode {blend!r}")
        self._account_cache(qx, qy)

    def process_groups(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        qx: np.ndarray,
        qy: np.ndarray,
        colors: np.ndarray,
        write_mask: np.ndarray,
        blend: str,
        starts: np.ndarray,
        ends: np.ndarray,
    ) -> None:
        """Run :meth:`process` over ``[starts[g], ends[g])`` quad groups.

        One native call blends every group and walks the color cache in the
        group-sequential reference order (blend group g, account group g,
        blend group g+1, ...), with the per-group eviction write-backs and
        block-state updates deferred to each group's end exactly like
        :meth:`_account_cache`.  Falls back to the per-group Python loop
        when the kernel is unavailable.
        """
        mode = _BLEND_MODES.get(blend)
        if mode is None:
            raise ValueError(f"unknown blend mode {blend!r}")
        nquads = qx.shape[0]
        if _native.available() and nquads:
            fb = self.fb
            config = self.config
            cache = self.cache
            state = cache._export_state()
            escratch = np.empty(nquads, dtype=np.int64)
            counts = _native.colorpass(
                np.ascontiguousarray(xs.reshape(-1), dtype=np.int64),
                np.ascontiguousarray(ys.reshape(-1), dtype=np.int64),
                np.ascontiguousarray(colors.reshape(-1, 4), dtype=np.float64),
                np.ascontiguousarray(write_mask.reshape(-1), dtype=np.uint8),
                np.ascontiguousarray(starts, dtype=np.int64),
                np.ascontiguousarray(ends, dtype=np.int64),
                mode,
                fb.color,
                fb.color_block_state,
                fb.block,
                fb.blocks_x,
                state,
                cache._nsets,
                cache._ways,
                cache._line_bytes,
                bool(config.color_compression),
                bool(config.color_fast_clear),
                escratch,
            )
            accesses, hits, misses, read_bytes, write_bytes = counts
            cache._import_state(*state)
            cache.accesses += accesses
            cache.hits += hits
            cache.misses += misses
            if read_bytes:
                self.memory.read(MemClient.COLOR, read_bytes)
            if write_bytes:
                self.memory.write(MemClient.COLOR, write_bytes)
            return
        for g in range(starts.shape[0]):
            s, e = int(starts[g]), int(ends[g])
            self.process(
                xs[s:e], ys[s:e], qx[s:e], qy[s:e],
                colors[s:e], write_mask[s:e], blend,
            )

    def _account_cache(self, qx: np.ndarray, qy: np.ndarray) -> None:
        fb = self.fb
        config = self.config
        line_bytes = config.color_cache.line_bytes
        if qx.shape[0] <= 32:
            # Scalar path for the short per-triangle groups that dominate
            # call counts: the same access sequence, byte totals and state
            # updates as the batched path below, without the numpy
            # fixed costs (which exceed the loop at this size).
            cache = self.cache
            state = fb.color_block_state
            block = fb.block
            blocks_x = fb.blocks_x
            read_bytes = 0
            evict_lines: list[int] = []
            for x, y in zip(qx.tolist(), qy.tolist()):
                bx_i = x * 2 // block
                by_i = y * 2 // block
                hit, evicted = cache.access_line(by_i * blocks_x + bx_i, True)
                if not hit:
                    st = state[by_i, bx_i]
                    nbytes = line_bytes
                    if config.color_compression and st == BlockState.COMPRESSED:
                        nbytes = line_bytes // 2
                    if config.color_fast_clear and st == BlockState.CLEARED:
                        nbytes = 0
                    read_bytes += nbytes
                if evicted is not None:
                    evict_lines.append(evicted // line_bytes)
            if read_bytes:
                self.memory.read(MemClient.COLOR, read_bytes)
            if evict_lines:
                self._write_back_lines(np.asarray(evict_lines, dtype=np.int64))
            return
        bx, by = fb.quad_block_coords(qx, qy)
        lines = fb.block_line_index(bx, by)
        result = self.cache.access_stream(lines, write=True)
        # Batched exactly like ZStencilStage._account_result: miss fills
        # only read block states, uniformity probes only read the color
        # plane (blending for this batch already happened above).
        misses = np.asarray(result.miss_lines, dtype=np.int64)
        if misses.size:
            ys, xs = np.divmod(misses, fb.blocks_x)
            states = fb.color_block_state[ys, xs]
            nbytes = np.full(misses.size, line_bytes, dtype=np.int64)
            if config.color_compression:
                nbytes[states == BlockState.COMPRESSED] = line_bytes // 2
            if config.color_fast_clear:
                nbytes[states == BlockState.CLEARED] = 0
            self.memory.read(MemClient.COLOR, int(nbytes.sum()))
        evictions = np.asarray(result.dirty_evictions, dtype=np.int64)
        if evictions.size:
            self._write_back_lines(evictions // line_bytes)

    def _write_back_lines(self, lines: np.ndarray) -> None:
        """Vectorized :meth:`_write_back` over a line-index array."""
        fb = self.fb
        line_bytes = self.config.color_cache.line_bytes
        ys, xs = np.divmod(lines, fb.blocks_x)
        if self.config.color_compression:
            uniform = fb.color_blocks_uniform(xs, ys)
        else:
            uniform = np.zeros(lines.size, dtype=bool)
        nbytes = np.where(uniform, line_bytes // 2, line_bytes)
        self.memory.write(MemClient.COLOR, int(nbytes.sum()))
        fb.color_block_state[ys[uniform], xs[uniform]] = BlockState.COMPRESSED
        fb.color_block_state[ys[~uniform], xs[~uniform]] = BlockState.UNCOMPRESSED

    def flush(self) -> None:
        """End-of-frame writeback so the DAC can scan the finished frame."""
        addrs = np.asarray(self.cache.flush(), dtype=np.int64)
        if addrs.size:
            self._write_back_lines(addrs // self.config.color_cache.line_bytes)

    def _write_back(self, line: int) -> None:
        fb = self.fb
        line_bytes = self.config.color_cache.line_bytes
        y, x = divmod(line, fb.blocks_x)
        if self.config.color_compression and fb.color_block_uniform(x, y):
            self.memory.write(MemClient.COLOR, line_bytes // 2)
            fb.color_block_state[y, x] = BlockState.COMPRESSED
        else:
            self.memory.write(MemClient.COLOR, line_bytes)
            fb.color_block_state[y, x] = BlockState.UNCOMPRESSED
