"""Simulator statistics: the event and byte counters behind Tables VII-XVII."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class MemClient(Enum):
    """GPU memory clients, matching the paper's Table XVI columns."""

    VERTEX = "Vertex"
    ZSTENCIL = "Z&Stencil"
    TEXTURE = "Texture"
    COLOR = "Color"
    DAC = "DAC"
    CP = "CP"


class QuadFate(Enum):
    """Terminal bucket of every rasterized quad (Table IX columns)."""

    HZ = "HZ"
    ZSTENCIL = "Z&Stencil"
    ALPHA = "Alpha"
    COLOR_MASK = "Color Mask"
    BLENDED = "Blending"


#: Every additive event counter shared by :class:`FrameGpuStats` and
#: :class:`GpuStats` — the single source of truth for merging and export.
_COUNTER_FIELDS = (
    "indices",
    "triangles_assembled",
    "triangles_clipped",
    "triangles_culled",
    "triangles_traversed",
    "vertex_cache_references",
    "vertex_cache_hits",
    "vertices_shaded",
    "vertex_instructions",
    "fragments_rasterized",
    "quads_rasterized",
    "complete_quads_rasterized",
    "fragments_zstencil",
    "quads_zstencil",
    "complete_quads_zstencil",
    "fragments_shaded",
    "quads_shaded",
    "fragments_blended",
    "quads_blended",
    "fragment_instructions",
    "texture_requests",
    "bilinear_samples",
    "fragment_alu_instructions",
)


@dataclass
class FrameGpuStats:
    """Counters for one simulated frame (the per-frame series of the figures)."""

    frame: int = 0
    # Geometry funnel (Fig. 6 / Table VII).
    indices: int = 0
    triangles_assembled: int = 0
    triangles_clipped: int = 0
    triangles_culled: int = 0
    triangles_traversed: int = 0
    # Vertex shading / cache (Fig. 5, Table IV).
    vertex_cache_references: int = 0
    vertex_cache_hits: int = 0
    vertices_shaded: int = 0
    vertex_instructions: int = 0
    # Fragment funnel (Tables VIII-XI).
    fragments_rasterized: int = 0
    quads_rasterized: int = 0
    complete_quads_rasterized: int = 0
    fragments_zstencil: int = 0
    quads_zstencil: int = 0
    complete_quads_zstencil: int = 0
    fragments_shaded: int = 0
    quads_shaded: int = 0
    fragments_blended: int = 0
    quads_blended: int = 0
    quad_fates: dict[QuadFate, int] = field(default_factory=dict)
    # Shading / texturing (Tables XII-XIII).
    fragment_instructions: int = 0
    texture_requests: int = 0
    bilinear_samples: int = 0
    fragment_alu_instructions: int = 0

    def count_quad_fates(self, fate: QuadFate, count: int) -> None:
        if count:
            self.quad_fates[fate] = self.quad_fates.get(fate, 0) + count

    @property
    def vertex_cache_hit_rate(self) -> float:
        refs = self.vertex_cache_references
        return self.vertex_cache_hits / refs if refs else 0.0

    def avg_triangle_size(self, stage: str) -> float:
        """Average triangle size in fragments at a pipeline stage (Fig. 7)."""
        tris = self.triangles_traversed
        if tris == 0:
            return 0.0
        counts = {
            "raster": self.fragments_rasterized,
            "zstencil": self.fragments_zstencil,
            "shaded": self.fragments_shaded,
            "blended": self.fragments_blended,
        }
        if stage not in counts:
            raise KeyError(f"unknown stage {stage!r}")
        return counts[stage] / tris

    def as_dict(self) -> dict[str, int | dict[str, int]]:
        """Counters plus quad fates keyed by name — stable comparison form."""
        out: dict[str, int | dict[str, int]] = {
            name: getattr(self, name) for name in _COUNTER_FIELDS
        }
        out["frame"] = self.frame
        out["quad_fates"] = {
            fate.name: count for fate, count in sorted(
                self.quad_fates.items(), key=lambda item: item[0].name
            )
        }
        return out

    def merge_into(self, total: "GpuStats") -> None:
        for name in _COUNTER_FIELDS:
            setattr(total, name, getattr(total, name) + getattr(self, name))
        for fate, count in self.quad_fates.items():
            total.quad_fates[fate] = total.quad_fates.get(fate, 0) + count
        total.frames += 1


def merge_frames(frame_stats) -> "GpuStats":
    """Fold per-frame counters into a fresh whole-run :class:`GpuStats`.

    Every counter shared by the two classes is additive and every quad fate
    is a per-frame event, so the totals of any frame range are exactly the
    sum of its frames — the property the farm's shard-merge layer
    (:mod:`repro.farm.merge`) relies on.
    """
    total = GpuStats()
    for fstats in frame_stats:
        fstats.merge_into(total)
    return total


@dataclass
class GpuStats:
    """Whole-run aggregation plus derived Table VII-XIII metrics."""

    frames: int = 0
    indices: int = 0
    triangles_assembled: int = 0
    triangles_clipped: int = 0
    triangles_culled: int = 0
    triangles_traversed: int = 0
    vertex_cache_references: int = 0
    vertex_cache_hits: int = 0
    vertices_shaded: int = 0
    vertex_instructions: int = 0
    fragments_rasterized: int = 0
    quads_rasterized: int = 0
    complete_quads_rasterized: int = 0
    fragments_zstencil: int = 0
    quads_zstencil: int = 0
    complete_quads_zstencil: int = 0
    fragments_shaded: int = 0
    quads_shaded: int = 0
    fragments_blended: int = 0
    quads_blended: int = 0
    quad_fates: dict[QuadFate, int] = field(default_factory=dict)
    fragment_instructions: int = 0
    texture_requests: int = 0
    bilinear_samples: int = 0
    fragment_alu_instructions: int = 0

    # -- Table VII ------------------------------------------------------
    @property
    def clip_cull_traverse_percent(self) -> tuple[float, float, float]:
        total = self.triangles_assembled
        if total == 0:
            return (0.0, 0.0, 0.0)
        return (
            100.0 * self.triangles_clipped / total,
            100.0 * self.triangles_culled / total,
            100.0 * self.triangles_traversed / total,
        )

    # -- Fig. 5 ---------------------------------------------------------
    @property
    def vertex_cache_hit_rate(self) -> float:
        refs = self.vertex_cache_references
        return self.vertex_cache_hits / refs if refs else 0.0

    # -- Table VIII -----------------------------------------------------
    def avg_triangle_size(self, stage: str) -> float:
        tris = self.triangles_traversed
        if tris == 0:
            return 0.0
        counts = {
            "raster": self.fragments_rasterized,
            "zstencil": self.fragments_zstencil,
            "shaded": self.fragments_shaded,
            "blended": self.fragments_blended,
        }
        return counts[stage] / tris

    # -- Table IX -------------------------------------------------------
    @property
    def quad_fate_percent(self) -> dict[QuadFate, float]:
        total = sum(self.quad_fates.values())
        if total == 0:
            return {fate: 0.0 for fate in QuadFate}
        return {
            fate: 100.0 * self.quad_fates.get(fate, 0) / total for fate in QuadFate
        }

    # -- Table X --------------------------------------------------------
    @property
    def quad_efficiency_raster(self) -> float:
        q = self.quads_rasterized
        return self.complete_quads_rasterized / q if q else 0.0

    @property
    def quad_efficiency_zstencil(self) -> float:
        q = self.quads_zstencil
        return self.complete_quads_zstencil / q if q else 0.0

    # -- Table XI -------------------------------------------------------
    def overdraw(self, stage: str, pixels: int) -> float:
        if pixels == 0:
            return 0.0
        counts = {
            "raster": self.fragments_rasterized,
            "zstencil": self.fragments_zstencil,
            "shaded": self.fragments_shaded,
            "blended": self.fragments_blended,
        }
        return counts[stage] / (pixels * max(self.frames, 1))

    # -- Table XIII -----------------------------------------------------
    @property
    def bilinears_per_texture_request(self) -> float:
        if self.texture_requests == 0:
            return 0.0
        return self.bilinear_samples / self.texture_requests

    @property
    def alu_per_bilinear(self) -> float:
        if self.bilinear_samples == 0:
            return 0.0
        return self.fragment_alu_instructions / self.bilinear_samples

    # -- HZ effectiveness (Section III.C discussion) ----------------------
    @property
    def hz_effectiveness(self) -> float:
        """Fraction of z-killable quads removed early by HZ."""
        hz = self.quad_fates.get(QuadFate.HZ, 0)
        zs = self.quad_fates.get(QuadFate.ZSTENCIL, 0)
        total = hz + zs
        return hz / total if total else 0.0
