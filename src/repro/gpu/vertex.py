"""Vertex front end: index fetch, post-transform cache, vertex shading.

The post-transform vertex cache is the paper's explanation (Section III.B,
Fig. 5) for why triangle lists dominate: with indexed geometry and a
cache-friendly face order, a list behaves like a strip.  The cache here is a
FIFO keyed by vertex index, the policy R520-era hardware used.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.api.commands import Draw
from repro.geometry.mesh import Mesh
from repro.gpu.config import GpuConfig
from repro.gpu.memory import MemoryController
from repro.gpu.stats import MemClient
from repro.shader.interpreter import ShaderInterpreter
from repro.shader.program import ShaderProgram


@dataclass
class VertexStageResult:
    """Shaded vertex data for one draw, indexed by position in ``unique``."""

    indices: np.ndarray  # the draw's index stream
    unique: np.ndarray  # unique vertex ids, sorted
    remap: np.ndarray  # indices remapped into rows of the arrays below
    clip_positions: np.ndarray  # (U, 4)
    uv: np.ndarray  # (U, 2)
    color: np.ndarray  # (U, 4)
    cache_references: int = 0
    cache_hits: int = 0
    vertices_shaded: int = 0
    instructions: int = 0


class VertexStage:
    """Fetches indices/vertices from memory and shades missed vertices."""

    def __init__(self, config: GpuConfig, memory: MemoryController):
        self.config = config
        self.memory = memory
        self._interpreter = ShaderInterpreter()

    def process(
        self,
        mesh: Mesh,
        draw: Draw,
        program: ShaderProgram | None,
        constants: dict[int, tuple] | None,
    ) -> VertexStageResult:
        indices = mesh.indices[
            draw.first_index : draw.first_index + draw.index_count
        ]
        refs, hits, misses = self._simulate_cache(indices)

        # Index fetch + vertex attribute fetch for every cache miss.
        self.memory.read(MemClient.VERTEX, indices.size * mesh.index_size_bytes)
        gran = self.config.vertex_fetch_granularity
        fetch_bytes = -(-mesh.vertex_size_bytes // gran) * gran
        self.memory.read(MemClient.VERTEX, misses * fetch_bytes)

        unique, remap = np.unique(indices, return_inverse=True)
        positions = mesh.positions[unique]
        uv = mesh.uvs[unique]
        normals = mesh.normals[unique]
        colors = (
            mesh.colors[unique]
            if mesh.colors is not None
            else np.ones((unique.size, 4))
        )

        if program is None:
            raise ValueError(
                "draw issued without a vertex program; the driver always "
                "synthesizes one (fixed-function translation)"
            )
        result = self._interpreter.run(
            program,
            inputs={
                0: positions,
                1: uv,
                2: normals,
                3: colors,
                4: np.zeros((unique.size, 3)),
                5: uv,
            },
            constants=constants,
        )
        clip = result.output(0)
        out_uv = result.outputs.get(1)
        out_color = result.outputs.get(2)
        return VertexStageResult(
            indices=indices,
            unique=unique,
            remap=remap,
            clip_positions=clip,
            uv=out_uv[:, :2] if out_uv is not None else uv,
            color=out_color if out_color is not None else colors,
            cache_references=refs,
            cache_hits=hits,
            vertices_shaded=misses,
            instructions=misses * program.instruction_count,
        )

    def _simulate_cache(self, indices: np.ndarray) -> tuple[int, int, int]:
        """FIFO post-transform cache; returns (references, hits, misses)."""
        size = self.config.vertex_cache_entries
        fifo: deque[int] = deque()
        members: set[int] = set()
        hits = 0
        for raw in indices.tolist():
            if raw in members:
                hits += 1
                continue
            fifo.append(raw)
            members.add(raw)
            if len(fifo) > size:
                members.discard(fifo.popleft())
        refs = int(indices.size)
        return refs, hits, refs - hits
