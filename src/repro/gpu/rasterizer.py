"""Edge-function rasterizer producing 2x2 quads.

Modern GPUs (and ATTILA) rasterize with linear edge functions over tiles
(16x16 then 8x8 in ATTILA) and hand 2x2 fragment quads to the rest of the
pipeline; quads are what makes texture LOD derivatives computable and what
the paper's Tables IX/X count.  We evaluate the edge functions over the
triangle's bounding box with numpy — this produces the identical fragment
and quad sets as the hierarchical traversal, since tile pruning only skips
work that produces no coverage.

Fill convention: pixel centers at (x+0.5, y+0.5), top-left rule, so shared
edges are rasterized exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu import _native

#: Lane offsets within a 2x2 quad, in lane order dy*2 + dx.  Allocated once:
#: pixel_coords() sits on the per-triangle hot path.
_QUAD_DX = np.array([0, 1, 0, 1])
_QUAD_DY = np.array([0, 0, 1, 1])


@dataclass
class QuadBatch:
    """Rasterizer output for one triangle: quad-aligned fragments.

    Lane order within a quad is (dy*2 + dx): (0,0), (1,0), (0,1), (1,1).
    ``cover`` marks real fragments; uncovered lanes carry extrapolated
    attributes (helper pixels, used only for derivatives).
    """

    qx: np.ndarray  # (Q,) quad x = pixel_x // 2
    qy: np.ndarray  # (Q,)
    cover: np.ndarray  # (Q, 4) bool
    z: np.ndarray  # (Q, 4) float depth
    uv: np.ndarray  # (Q, 4, 2)
    color: np.ndarray  # (Q, 4, 4)
    front: bool

    @property
    def quad_count(self) -> int:
        return int(self.qx.shape[0])

    @property
    def fragment_count(self) -> int:
        return int(self.cover.sum())

    @property
    def complete_quads(self) -> int:
        return int(self.cover.all(axis=1).sum())

    def pixel_coords(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-lane pixel coordinates, shape (Q, 4) each (x, y)."""
        xs = self.qx[:, None] * 2 + _QUAD_DX[None, :]
        ys = self.qy[:, None] * 2 + _QUAD_DY[None, :]
        return xs, ys

    def select(self, mask: np.ndarray) -> "QuadBatch":
        """Subset of quads where ``mask`` is True."""
        return QuadBatch(
            qx=self.qx[mask],
            qy=self.qy[mask],
            cover=self.cover[mask],
            z=self.z[mask],
            uv=self.uv[mask],
            color=self.color[mask],
            front=self.front,
        )


def rasterize_triangle(
    xy: np.ndarray,
    z: np.ndarray,
    inv_w: np.ndarray,
    uv: np.ndarray,
    color: np.ndarray,
    width: int,
    height: int,
    front: bool = True,
) -> QuadBatch | None:
    """Rasterize one screen-space triangle into a :class:`QuadBatch`.

    ``xy``: (3, 2) screen positions, ``z``: (3,) depths, ``inv_w``: (3,)
    reciprocal clip W for perspective-correct ``uv``/(3, 2) and
    ``color``/(3, 4) interpolation.  Returns ``None`` when no quad is
    covered.
    """
    # Snap to 1/256 sub-pixel fixed point like real rasterizers; shared
    # edges between triangles become bit-identical, so the top-left rule
    # partitions them exactly.
    v = np.round(np.asarray(xy, dtype=np.float64) * 256.0) / 256.0
    area2 = (v[1, 0] - v[0, 0]) * (v[2, 1] - v[0, 1]) - (v[2, 0] - v[0, 0]) * (
        v[1, 1] - v[0, 1]
    )
    if area2 == 0.0:
        return None
    order = (0, 1, 2)
    if area2 < 0.0:
        order = (0, 2, 1)
        area2 = -area2
    p0, p1, p2 = v[order[0]], v[order[1]], v[order[2]]
    zs = np.asarray(z, dtype=np.float64)[list(order)]
    ws = np.asarray(inv_w, dtype=np.float64)[list(order)]
    uvs = np.asarray(uv, dtype=np.float64)[list(order)]
    colors = np.asarray(color, dtype=np.float64)[list(order)]

    min_x = max(int(np.floor(v[:, 0].min())), 0)
    max_x = min(int(np.ceil(v[:, 0].max())), width - 1)
    min_y = max(int(np.floor(v[:, 1].min())), 0)
    max_y = min(int(np.ceil(v[:, 1].max())), height - 1)
    if min_x > max_x or min_y > max_y:
        return None
    qx0, qx1 = min_x // 2, max_x // 2
    qy0, qy1 = min_y // 2, max_y // 2

    xs = np.arange(qx0 * 2, qx1 * 2 + 2, dtype=np.float64) + 0.5
    ys = np.arange(qy0 * 2, qy1 * 2 + 2, dtype=np.float64) + 0.5

    # Edge i is opposite vertex i; E_i >= 0 inside for positive-area order.
    edges = ((p1, p2), (p2, p0), (p0, p1))
    e_vals = []
    covered = None
    for a, b in edges:
        # E(p) = cross(b - a, p - a); positive inside for the positive-area
        # vertex order established above.
        dx = b[0] - a[0]
        dy = b[1] - a[1]
        a_coef = -dy
        b_coef = dx
        c_coef = -(a_coef * a[0] + b_coef * a[1])
        e = a_coef * xs[None, :] + b_coef * ys[:, None] + c_coef
        # Top-left rule (y-down screen coords): top edges run left-to-right
        # (dy == 0, dx > 0), left edges run upward (dy < 0); those include
        # their boundary, the others exclude it.
        top_left = (dy == 0.0 and dx > 0.0) or (dy < 0.0)
        inside = e >= 0.0 if top_left else e > 0.0
        covered = inside if covered is None else (covered & inside)
        e_vals.append(e)
    if not covered.any():
        return None

    inv_area = 1.0 / area2
    l0 = e_vals[0] * inv_area
    l1 = e_vals[1] * inv_area
    l2 = e_vals[2] * inv_area

    depth = l0 * zs[0] + l1 * zs[1] + l2 * zs[2]
    one_w = l0 * ws[0] + l1 * ws[1] + l2 * ws[2]
    one_w = np.where(one_w == 0.0, 1e-12, one_w)
    uv_num_u = l0 * uvs[0, 0] * ws[0] + l1 * uvs[1, 0] * ws[1] + l2 * uvs[2, 0] * ws[2]
    uv_num_v = l0 * uvs[0, 1] * ws[0] + l1 * uvs[1, 1] * ws[1] + l2 * uvs[2, 1] * ws[2]
    u = uv_num_u / one_w
    vv = uv_num_v / one_w
    col = np.empty(depth.shape + (4,), dtype=np.float64)
    for c in range(4):
        num = (
            l0 * colors[0, c] * ws[0]
            + l1 * colors[1, c] * ws[1]
            + l2 * colors[2, c] * ws[2]
        )
        col[..., c] = num / one_w

    gh, gw = covered.shape  # multiples of 2 by construction
    qh, qw = gh // 2, gw // 2

    def to_quads(arr: np.ndarray) -> np.ndarray:
        """(gh, gw, ...) -> (Q, 4, ...) in lane order dy*2+dx."""
        extra = arr.shape[2:]
        quads = arr.reshape(qh, 2, qw, 2, *extra)
        quads = np.moveaxis(quads, 2, 1)  # (qh, qw, 2(dy), 2(dx), ...)
        return quads.reshape(qh * qw, 4, *extra)

    q_cover = to_quads(covered)
    keep = q_cover.any(axis=1)
    if not keep.any():
        return None
    grid_qy, grid_qx = np.divmod(np.nonzero(keep)[0], qw)
    return QuadBatch(
        qx=(grid_qx + qx0).astype(np.int64),
        qy=(grid_qy + qy0).astype(np.int64),
        cover=q_cover[keep],
        z=np.clip(to_quads(depth)[keep], 0.0, 1.0),
        uv=np.stack([to_quads(u)[keep], to_quads(vv)[keep]], axis=-1),
        color=to_quads(col)[keep],
        front=front,
    )


@dataclass
class QuadStream:
    """All quads of one draw call, concatenated in triangle submission order.

    The draw-level analogue of :class:`QuadBatch`: the same per-quad arrays,
    plus a per-quad triangle id (``tri``, the triangle's index among the
    draw's traversed triangles) and a per-quad front-facing flag.  Quads of
    one triangle are contiguous and triangles appear in submission order, so
    the stream is exactly the concatenation of the per-triangle batches.
    """

    qx: np.ndarray  # (Q,) quad x = pixel_x // 2
    qy: np.ndarray  # (Q,)
    cover: np.ndarray  # (Q, 4) bool
    z: np.ndarray  # (Q, 4) float depth
    uv: np.ndarray  # (Q, 4, 2)
    color: np.ndarray  # (Q, 4, 4)
    tri: np.ndarray  # (Q,) int triangle index within the draw
    front: np.ndarray  # (Q,) bool

    @property
    def quad_count(self) -> int:
        return int(self.qx.shape[0])

    @property
    def fragment_count(self) -> int:
        return int(self.cover.sum())

    @property
    def complete_quads(self) -> int:
        return int(self.cover.all(axis=1).sum())

    def pixel_coords(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-lane pixel coordinates, shape (Q, 4) each (x, y)."""
        xs = self.qx[:, None] * 2 + _QUAD_DX[None, :]
        ys = self.qy[:, None] * 2 + _QUAD_DY[None, :]
        return xs, ys

    def region_footprint(self) -> tuple[int, int, int, int, int]:
        """Pixel-space framebuffer region this draw's quads touch.

        ``(x0, y0, x1, y1, quad_count)`` — the inclusive bounding rectangle
        of every rasterized quad plus the quad count, the conservative
        per-draw framebuffer-region dependency the draw cache records (see
        :mod:`repro.farm.drawcache`).
        """
        if self.quad_count == 0:
            return (0, 0, -1, -1, 0)
        return (
            int(self.qx.min()) * 2,
            int(self.qy.min()) * 2,
            int(self.qx.max()) * 2 + 1,
            int(self.qy.max()) * 2 + 1,
            self.quad_count,
        )

    def select(self, mask: np.ndarray) -> "QuadStream":
        """Subset of quads where ``mask`` (bool or index array) selects."""
        return QuadStream(
            qx=self.qx[mask],
            qy=self.qy[mask],
            cover=self.cover[mask],
            z=self.z[mask],
            uv=self.uv[mask],
            color=self.color[mask],
            tri=self.tri[mask],
            front=self.front[mask],
        )


def rasterize_draw(
    tris,
    width: int,
    height: int,
    chunk_quads: int = 1 << 17,
) -> QuadStream | None:
    """Rasterize a whole draw call's triangles into one :class:`QuadStream`.

    ``tris`` is a :class:`~repro.gpu.clipper.ScreenTriangles`.  Every
    arithmetic step evaluates the identical float64 expressions as
    :func:`rasterize_triangle`, in the same association order, so the stream
    is bit-identical to concatenating the per-triangle batches (covered by
    ``tests/test_quadstream.py``).  Triangles are processed in batches of at
    most ``chunk_quads`` candidate (bounding-box) quads to bound peak memory.
    """
    t_count = tris.count
    if t_count == 0:
        return None
    v = np.round(np.asarray(tris.xy, dtype=np.float64) * 256.0) / 256.0
    area2 = (v[:, 1, 0] - v[:, 0, 0]) * (v[:, 2, 1] - v[:, 0, 1]) - (
        v[:, 2, 0] - v[:, 0, 0]
    ) * (v[:, 1, 1] - v[:, 0, 1])

    min_x = np.maximum(np.floor(v[:, :, 0].min(axis=1)), 0.0).astype(np.int64)
    max_x = np.minimum(np.ceil(v[:, :, 0].max(axis=1)), width - 1).astype(np.int64)
    min_y = np.maximum(np.floor(v[:, :, 1].min(axis=1)), 0.0).astype(np.int64)
    max_y = np.minimum(np.ceil(v[:, :, 1].max(axis=1)), height - 1).astype(np.int64)
    valid = (area2 != 0.0) & (min_x <= max_x) & (min_y <= max_y)
    if not valid.any():
        return None
    tsel = np.nonzero(valid)[0]

    # Winding reorder (swap vertices 1 and 2 where the signed area is
    # negative) so every edge function is positive inside.
    neg = area2[tsel] < 0.0
    idx = np.where(neg[:, None], np.array([0, 2, 1]), np.array([0, 1, 2]))
    rows = np.arange(tsel.size)[:, None]
    vv = v[tsel][rows, idx]
    zs = np.asarray(tris.z, dtype=np.float64)[tsel][rows, idx]
    ws = np.asarray(tris.inv_w, dtype=np.float64)[tsel][rows, idx]
    uvs = np.asarray(tris.uv, dtype=np.float64)[tsel][rows, idx]
    cols = np.asarray(tris.color, dtype=np.float64)[tsel][rows, idx]
    inv_area = 1.0 / np.abs(area2[tsel])
    front_sel = np.asarray(tris.front, dtype=bool)[tsel]

    # Edge i is opposite vertex i: E(p) = a*px + b*py + c, positive inside.
    ea = np.empty((tsel.size, 3))
    eb = np.empty((tsel.size, 3))
    ec = np.empty((tsel.size, 3))
    etl = np.empty((tsel.size, 3), dtype=bool)
    for k, (a, b) in enumerate(((1, 2), (2, 0), (0, 1))):
        ax, ay = vv[:, a, 0], vv[:, a, 1]
        dx = vv[:, b, 0] - ax
        dy = vv[:, b, 1] - ay
        a_coef = -dy
        b_coef = dx
        ea[:, k] = a_coef
        eb[:, k] = b_coef
        ec[:, k] = -(a_coef * ax + b_coef * ay)
        # Top-left rule, matching rasterize_triangle.
        etl[:, k] = ((dy == 0.0) & (dx > 0.0)) | (dy < 0.0)

    qx0, qx1 = min_x[tsel] // 2, max_x[tsel] // 2
    qy0, qy1 = min_y[tsel] // 2, max_y[tsel] // 2
    qw = qx1 - qx0 + 1
    nq = qw * (qy1 - qy0 + 1)

    parts: list[tuple] = []
    start = 0
    while start < tsel.size:
        # Greedy triangle batch under the candidate-quad budget (a single
        # oversized triangle still forms its own batch).
        end = start + 1
        budget = int(nq[start])
        while end < tsel.size and budget + int(nq[end]) <= chunk_quads:
            budget += int(nq[end])
            end += 1
        batch = _rasterize_tri_range(
            start, end, nq, qw, qx0, qy0, ea, eb, ec, etl,
            inv_area, zs, ws, uvs, cols,
        )
        if batch is not None:
            parts.append(batch)
        start = end

    if not parts:
        return None
    t_local = np.concatenate([p[6] for p in parts])
    return QuadStream(
        qx=np.concatenate([p[0] for p in parts]),
        qy=np.concatenate([p[1] for p in parts]),
        cover=np.concatenate([p[2] for p in parts]),
        z=np.concatenate([p[3] for p in parts]),
        uv=np.concatenate([p[4] for p in parts]),
        color=np.concatenate([p[5] for p in parts]),
        tri=tsel[t_local],
        front=front_sel[t_local],
    )


def _rasterize_tri_range(
    start, end, nq, qw, qx0, qy0, ea, eb, ec, etl, inv_area, zs, ws, uvs, cols
):
    """Rasterize triangles [start, end) of a prepared draw in one sweep."""
    counts = nq[start:end]
    offsets = np.concatenate(([0], np.cumsum(counts)))
    total = int(offsets[-1])
    t = np.repeat(np.arange(start, end), counts)  # (N,) triangle per candidate
    local = np.arange(total, dtype=np.int64) - offsets[t - start]
    lqy, lqx = np.divmod(local, qw[t])
    cqx = qx0[t] + lqx
    cqy = qy0[t] + lqy

    if _native.available():
        # Fused edge evaluation + coverage, then fused interpolation over
        # the kept quads (both bit-identical to the numpy expressions).
        es3, cov8 = _native.raster_edges(
            np.ascontiguousarray(cqx),
            np.ascontiguousarray(cqy),
            np.ascontiguousarray(t),
            np.ascontiguousarray(ea),
            np.ascontiguousarray(eb),
            np.ascontiguousarray(ec),
            np.ascontiguousarray(etl).view(np.uint8),
        )
        covered = cov8.view(bool)
        keep = covered.any(axis=1)
        if not keep.any():
            return None
        keep_idx = np.nonzero(keep)[0]
        tk = t[keep_idx]
        depth, uv, col = _native.raster_interp(
            es3,
            keep_idx,
            np.ascontiguousarray(tk),
            np.ascontiguousarray(inv_area),
            np.ascontiguousarray(zs),
            np.ascontiguousarray(ws),
            np.ascontiguousarray(uvs),
            np.ascontiguousarray(cols),
        )
        return (
            cqx[keep_idx],
            cqy[keep_idx],
            covered[keep_idx],
            depth,
            uv,
            col,
            tk,
        )
    else:
        # Pixel centers: integer coords are exact in float64, +0.5 is
        # exact, so these match rasterize_triangle's arange(...)+0.5
        # values bit-for-bit.
        pxf = (cqx[:, None] * 2 + _QUAD_DX[None, :]).astype(np.float64) + 0.5
        pyf = (cqy[:, None] * 2 + _QUAD_DY[None, :]).astype(np.float64) + 0.5

        es = []
        covered = None
        for k in range(3):
            # Column-then-gather (1D take) beats the paired 2D fancy
            # index, and (e > 0) | (top-left & (e == 0)) is the same
            # predicate as the where(tl, e >= 0, e > 0) form for every
            # float including NaN.
            ek = ea[:, k][t][:, None] * pxf + eb[:, k][t][:, None] * pyf
            e = ek + ec[:, k][t][:, None]
            inside = (e > 0.0) | (etl[:, k][t][:, None] & (e == 0.0))
            if covered is None:
                covered = inside
            else:
                np.logical_and(covered, inside, out=covered)
            es.append(e)
    keep = covered.any(axis=1)
    if not keep.any():
        return None

    tk = t[keep]
    ia = inv_area[tk][:, None]
    l0 = es[0][keep] * ia
    l1 = es[1][keep] * ia
    l2 = es[2][keep] * ia

    z0, z1, z2 = zs[tk, 0, None], zs[tk, 1, None], zs[tk, 2, None]
    depth = l0 * z0 + l1 * z1 + l2 * z2
    w0, w1, w2 = ws[tk, 0, None], ws[tk, 1, None], ws[tk, 2, None]
    one_w = l0 * w0 + l1 * w1 + l2 * w2
    one_w = np.where(one_w == 0.0, 1e-12, one_w)
    u = (
        l0 * uvs[tk, 0, 0, None] * w0
        + l1 * uvs[tk, 1, 0, None] * w1
        + l2 * uvs[tk, 2, 0, None] * w2
    ) / one_w
    vv = (
        l0 * uvs[tk, 0, 1, None] * w0
        + l1 * uvs[tk, 1, 1, None] * w1
        + l2 * uvs[tk, 2, 1, None] * w2
    ) / one_w
    col = np.empty(depth.shape + (4,), dtype=np.float64)
    for c in range(4):
        num = (
            l0 * cols[tk, 0, c, None] * w0
            + l1 * cols[tk, 1, c, None] * w1
            + l2 * cols[tk, 2, c, None] * w2
        )
        col[..., c] = num / one_w

    return (
        cqx[keep],
        cqy[keep],
        covered[keep],
        np.clip(depth, 0.0, 1.0),
        np.stack([u, vv], axis=-1),
        col,
        tk,
    )
