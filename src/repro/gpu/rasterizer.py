"""Edge-function rasterizer producing 2x2 quads.

Modern GPUs (and ATTILA) rasterize with linear edge functions over tiles
(16x16 then 8x8 in ATTILA) and hand 2x2 fragment quads to the rest of the
pipeline; quads are what makes texture LOD derivatives computable and what
the paper's Tables IX/X count.  We evaluate the edge functions over the
triangle's bounding box with numpy — this produces the identical fragment
and quad sets as the hierarchical traversal, since tile pruning only skips
work that produces no coverage.

Fill convention: pixel centers at (x+0.5, y+0.5), top-left rule, so shared
edges are rasterized exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

@dataclass
class QuadBatch:
    """Rasterizer output for one triangle: quad-aligned fragments.

    Lane order within a quad is (dy*2 + dx): (0,0), (1,0), (0,1), (1,1).
    ``cover`` marks real fragments; uncovered lanes carry extrapolated
    attributes (helper pixels, used only for derivatives).
    """

    qx: np.ndarray  # (Q,) quad x = pixel_x // 2
    qy: np.ndarray  # (Q,)
    cover: np.ndarray  # (Q, 4) bool
    z: np.ndarray  # (Q, 4) float depth
    uv: np.ndarray  # (Q, 4, 2)
    color: np.ndarray  # (Q, 4, 4)
    front: bool

    @property
    def quad_count(self) -> int:
        return int(self.qx.shape[0])

    @property
    def fragment_count(self) -> int:
        return int(self.cover.sum())

    @property
    def complete_quads(self) -> int:
        return int(self.cover.all(axis=1).sum())

    def pixel_coords(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-lane pixel coordinates, shape (Q, 4) each (x, y)."""
        dx = np.array([0, 1, 0, 1])
        dy = np.array([0, 0, 1, 1])
        xs = self.qx[:, None] * 2 + dx[None, :]
        ys = self.qy[:, None] * 2 + dy[None, :]
        return xs, ys

    def select(self, mask: np.ndarray) -> "QuadBatch":
        """Subset of quads where ``mask`` is True."""
        return QuadBatch(
            qx=self.qx[mask],
            qy=self.qy[mask],
            cover=self.cover[mask],
            z=self.z[mask],
            uv=self.uv[mask],
            color=self.color[mask],
            front=self.front,
        )


def rasterize_triangle(
    xy: np.ndarray,
    z: np.ndarray,
    inv_w: np.ndarray,
    uv: np.ndarray,
    color: np.ndarray,
    width: int,
    height: int,
    front: bool = True,
) -> QuadBatch | None:
    """Rasterize one screen-space triangle into a :class:`QuadBatch`.

    ``xy``: (3, 2) screen positions, ``z``: (3,) depths, ``inv_w``: (3,)
    reciprocal clip W for perspective-correct ``uv``/(3, 2) and
    ``color``/(3, 4) interpolation.  Returns ``None`` when no quad is
    covered.
    """
    # Snap to 1/256 sub-pixel fixed point like real rasterizers; shared
    # edges between triangles become bit-identical, so the top-left rule
    # partitions them exactly.
    v = np.round(np.asarray(xy, dtype=np.float64) * 256.0) / 256.0
    area2 = (v[1, 0] - v[0, 0]) * (v[2, 1] - v[0, 1]) - (v[2, 0] - v[0, 0]) * (
        v[1, 1] - v[0, 1]
    )
    if area2 == 0.0:
        return None
    order = (0, 1, 2)
    if area2 < 0.0:
        order = (0, 2, 1)
        area2 = -area2
    p0, p1, p2 = v[order[0]], v[order[1]], v[order[2]]
    zs = np.asarray(z, dtype=np.float64)[list(order)]
    ws = np.asarray(inv_w, dtype=np.float64)[list(order)]
    uvs = np.asarray(uv, dtype=np.float64)[list(order)]
    colors = np.asarray(color, dtype=np.float64)[list(order)]

    min_x = max(int(np.floor(v[:, 0].min())), 0)
    max_x = min(int(np.ceil(v[:, 0].max())), width - 1)
    min_y = max(int(np.floor(v[:, 1].min())), 0)
    max_y = min(int(np.ceil(v[:, 1].max())), height - 1)
    if min_x > max_x or min_y > max_y:
        return None
    qx0, qx1 = min_x // 2, max_x // 2
    qy0, qy1 = min_y // 2, max_y // 2

    xs = np.arange(qx0 * 2, qx1 * 2 + 2, dtype=np.float64) + 0.5
    ys = np.arange(qy0 * 2, qy1 * 2 + 2, dtype=np.float64) + 0.5

    # Edge i is opposite vertex i; E_i >= 0 inside for positive-area order.
    edges = ((p1, p2), (p2, p0), (p0, p1))
    e_vals = []
    covered = None
    for a, b in edges:
        # E(p) = cross(b - a, p - a); positive inside for the positive-area
        # vertex order established above.
        dx = b[0] - a[0]
        dy = b[1] - a[1]
        a_coef = -dy
        b_coef = dx
        c_coef = -(a_coef * a[0] + b_coef * a[1])
        e = a_coef * xs[None, :] + b_coef * ys[:, None] + c_coef
        # Top-left rule (y-down screen coords): top edges run left-to-right
        # (dy == 0, dx > 0), left edges run upward (dy < 0); those include
        # their boundary, the others exclude it.
        top_left = (dy == 0.0 and dx > 0.0) or (dy < 0.0)
        inside = e >= 0.0 if top_left else e > 0.0
        covered = inside if covered is None else (covered & inside)
        e_vals.append(e)
    if not covered.any():
        return None

    inv_area = 1.0 / area2
    l0 = e_vals[0] * inv_area
    l1 = e_vals[1] * inv_area
    l2 = e_vals[2] * inv_area

    depth = l0 * zs[0] + l1 * zs[1] + l2 * zs[2]
    one_w = l0 * ws[0] + l1 * ws[1] + l2 * ws[2]
    one_w = np.where(one_w == 0.0, 1e-12, one_w)
    uv_num_u = l0 * uvs[0, 0] * ws[0] + l1 * uvs[1, 0] * ws[1] + l2 * uvs[2, 0] * ws[2]
    uv_num_v = l0 * uvs[0, 1] * ws[0] + l1 * uvs[1, 1] * ws[1] + l2 * uvs[2, 1] * ws[2]
    u = uv_num_u / one_w
    vv = uv_num_v / one_w
    col = np.empty(depth.shape + (4,), dtype=np.float64)
    for c in range(4):
        num = (
            l0 * colors[0, c] * ws[0]
            + l1 * colors[1, c] * ws[1]
            + l2 * colors[2, c] * ws[2]
        )
        col[..., c] = num / one_w

    gh, gw = covered.shape  # multiples of 2 by construction
    qh, qw = gh // 2, gw // 2

    def to_quads(arr: np.ndarray) -> np.ndarray:
        """(gh, gw, ...) -> (Q, 4, ...) in lane order dy*2+dx."""
        extra = arr.shape[2:]
        quads = arr.reshape(qh, 2, qw, 2, *extra)
        quads = np.moveaxis(quads, 2, 1)  # (qh, qw, 2(dy), 2(dx), ...)
        return quads.reshape(qh * qw, 4, *extra)

    q_cover = to_quads(covered)
    keep = q_cover.any(axis=1)
    if not keep.any():
        return None
    grid_qy, grid_qx = np.divmod(np.nonzero(keep)[0], qw)
    return QuadBatch(
        qx=(grid_qx + qx0).astype(np.int64),
        qy=(grid_qy + qy0).astype(np.int64),
        cover=q_cover[keep],
        z=np.clip(to_quads(depth)[keep], 0.0, 1.0),
        uv=np.stack([to_quads(u)[keep], to_quads(vv)[keep]], axis=-1),
        color=to_quads(col)[keep],
        front=front,
    )
