"""Framebuffer surfaces: Z/stencil, color, block state, and Hierarchical Z.

Surfaces are organized in 8x8-pixel blocks — one Z/color cache line (256 B at
4 B/pixel) per block.  Each block carries a state (CLEARED / COMPRESSED /
UNCOMPRESSED) implementing the fast-clear and compression schemes the paper
describes: cleared blocks cost no memory read, compressed blocks move at half
a line, and the Hierarchical Z buffer keeps a per-block max depth on-die.
"""

from __future__ import annotations

from enum import IntEnum

import numpy as np

from repro.gpu import _native


class BlockState(IntEnum):
    CLEARED = 0
    COMPRESSED = 1
    UNCOMPRESSED = 2


class Framebuffer:
    """Render target state for one resolution."""

    def __init__(self, width: int, height: int, block: int = 8):
        if width <= 0 or height <= 0:
            raise ValueError("resolution must be positive")
        self.width = width
        self.height = height
        self.block = block
        self.blocks_x = -(-width // block)
        self.blocks_y = -(-height // block)
        pad_w = self.blocks_x * block
        pad_h = self.blocks_y * block
        self.z = np.ones((pad_h, pad_w), dtype=np.float64)
        self.stencil = np.zeros((pad_h, pad_w), dtype=np.int16)
        self.color = np.zeros((pad_h, pad_w, 4), dtype=np.float64)
        self.z_block_state = np.full(
            (self.blocks_y, self.blocks_x), BlockState.CLEARED, dtype=np.uint8
        )
        self.color_block_state = np.full(
            (self.blocks_y, self.blocks_x), BlockState.CLEARED, dtype=np.uint8
        )
        self.hz_max = np.ones((self.blocks_y, self.blocks_x), dtype=np.float64)
        # Extensions the paper names as possible HZ improvements
        # (Section III.C): a per-block depth minimum (min/max HZ) and a
        # per-block stencil value band (stencil-in-HZ).
        self.hz_min = np.ones((self.blocks_y, self.blocks_x), dtype=np.float64)
        self.hz_stencil_min = np.zeros(
            (self.blocks_y, self.blocks_x), dtype=np.int16
        )
        self.hz_stencil_max = np.zeros(
            (self.blocks_y, self.blocks_x), dtype=np.int16
        )
        self.z_clear_value = 1.0
        self.color_clear_value = np.array([0.0, 0.0, 0.0, 1.0])
        self.stencil_clear_value = 0

    # -- clears -----------------------------------------------------------
    def clear_depth_stencil(self, depth: float = 1.0, stencil: int = 0) -> None:
        """Fast clear: reset planes and mark every block CLEARED (no traffic)."""
        self.z.fill(depth)
        self.stencil.fill(stencil)
        self.z_block_state.fill(BlockState.CLEARED)
        self.hz_max.fill(depth)
        self.hz_min.fill(depth)
        self.hz_stencil_min.fill(stencil)
        self.hz_stencil_max.fill(stencil)
        self.z_clear_value = depth
        self.stencil_clear_value = stencil

    def clear_stencil_only(self, stencil: int = 0) -> None:
        """Stencil-plane fast clear.

        Approximation: hardware tracks stencil-clear state per block; we reset
        the stencil values at no memory cost and leave the Z block states (and
        the data already resident in the Z cache) untouched.
        """
        self.stencil.fill(stencil)
        self.hz_stencil_min.fill(stencil)
        self.hz_stencil_max.fill(stencil)
        self.stencil_clear_value = stencil

    def clear_color(self, value=(0.0, 0.0, 0.0, 1.0)) -> None:
        self.color[:] = np.asarray(value, dtype=np.float64)
        self.color_block_state.fill(BlockState.CLEARED)
        self.color_clear_value = np.asarray(value, dtype=np.float64)

    # -- block geometry -----------------------------------------------------
    def block_line_index(self, bx: np.ndarray, by: np.ndarray) -> np.ndarray:
        """Cache line index of block (bx, by) in the surface address space."""
        return by * self.blocks_x + bx

    def quad_block_coords(self, qx: np.ndarray, qy: np.ndarray):
        """Block coordinates containing quads at quad coordinates (qx, qy)."""
        return qx * 2 // self.block, qy * 2 // self.block

    # -- Hierarchical Z ------------------------------------------------------
    def hz_cull_mask(
        self, qx: np.ndarray, qy: np.ndarray, z_min: np.ndarray
    ) -> np.ndarray:
        """True where a quad is provably behind everything in its block.

        The HZ buffer stores the farthest depth per block; a quad whose
        nearest fragment is farther can never pass a LESS/LEQUAL/EQUAL test.
        """
        bx, by = self.quad_block_coords(qx, qy)
        return z_min > self.hz_max[by, bx]

    def hz_minmax_equal_cull_mask(
        self,
        qx: np.ndarray,
        qy: np.ndarray,
        z_min: np.ndarray,
        z_max: np.ndarray,
    ) -> np.ndarray:
        """Min/max HZ cull for EQUAL-test passes (paper Section III.C).

        A quad whose depth interval lies entirely outside the block's
        [min, max] band cannot contain any fragment equal to a stored depth.
        """
        bx, by = self.quad_block_coords(qx, qy)
        return (z_min > self.hz_max[by, bx]) | (z_max < self.hz_min[by, bx])

    def hz_stencil_cull_mask(
        self, qx: np.ndarray, qy: np.ndarray, ref: int, func: str
    ) -> np.ndarray:
        """Stencil-in-HZ cull (paper Section III.C).

        The HZ block metadata carries the [min, max] band of the block's
        stencil values.  A quad whose stencil test provably fails for the
        whole band is culled early: ``equal ref`` fails when ref lies outside
        the band (e.g. a Doom3 light pass over a fully-shadowed block), and
        ``notequal ref`` fails when the band collapses onto ref.
        """
        bx, by = self.quad_block_coords(qx, qy)
        s_min = self.hz_stencil_min[by, bx]
        s_max = self.hz_stencil_max[by, bx]
        if func == "equal":
            return (ref < s_min) | (ref > s_max)
        if func == "notequal":
            return (s_min == ref) & (s_max == ref)
        return np.zeros(qx.shape[0], dtype=bool)

    def update_hz(self, bx: np.ndarray, by: np.ndarray) -> None:
        """Recompute the HZ min/max for the given (deduplicated) blocks."""
        if len(bx) == 0:
            return
        b = self.block
        if _native.available():
            _native.hz_update(
                self.z,
                b,
                np.ascontiguousarray(bx, dtype=np.int64),
                np.ascontiguousarray(by, dtype=np.int64),
                self.hz_max,
                self.hz_min,
            )
            return
        for x, y in zip(bx.tolist(), by.tolist()):
            tile = self.z[y * b : (y + 1) * b, x * b : (x + 1) * b]
            self.hz_max[y, x] = tile.max()
            self.hz_min[y, x] = tile.min()

    def note_stencil_write(self, bx: np.ndarray, by: np.ndarray) -> None:
        """Refresh the per-block stencil band after stencil writes."""
        if len(bx) == 0:
            return
        b = self.block
        packed = np.unique(
            np.asarray(by, dtype=np.int64) * self.blocks_x + np.asarray(bx)
        )
        for p in packed.tolist():
            y, x = divmod(p, self.blocks_x)
            tile = self.stencil[y * b : (y + 1) * b, x * b : (x + 1) * b]
            self.hz_stencil_min[y, x] = tile.min()
            self.hz_stencil_max[y, x] = tile.max()

    # -- compression checks ---------------------------------------------------
    @property
    def _block_grid(self) -> tuple[np.ndarray, np.ndarray]:
        grid = getattr(self, "_block_grid_cache", None)
        if grid is None:
            grid = np.mgrid[0 : self.block, 0 : self.block]
            self._block_grid_cache = grid
        return grid[0], grid[1]

    def _z_tiles(self, bx: np.ndarray, by: np.ndarray) -> np.ndarray:
        """Gather 8x8 z tiles for blocks (bx, by) as an (n, b, b) array."""
        b = self.block
        view = self.z.reshape(self.blocks_y, b, self.blocks_x, b)
        return view[by, :, bx, :]

    def z_block_compressible(self, bx: int, by: int) -> bool:
        """Planar-fit check: a block covered by few triangles stores as planes.

        The real scheme (ATI Hyper-Z) keeps plane equations per block; a
        single-triangle block is exactly planar.  We fit a plane from three
        corners and accept small residuals (two-plane blocks roughly halve
        compressibility, which the tolerance approximates).
        """
        return bool(
            self.z_blocks_compressible(
                np.asarray([bx], dtype=np.int64), np.asarray([by], dtype=np.int64)
            )[0]
        )

    def z_blocks_compressible(self, bx: np.ndarray, by: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`z_block_compressible` over block-coordinate arrays."""
        b = self.block
        tiles = self._z_tiles(bx, by)
        z00 = tiles[:, 0, 0]
        dzdx = (tiles[:, 0, -1] - z00) / (b - 1)
        dzdy = (tiles[:, -1, 0] - z00) / (b - 1)
        ys, xs = self._block_grid
        plane = (
            z00[:, None, None]
            + dzdx[:, None, None] * xs
            + dzdy[:, None, None] * ys
        )
        return np.abs(tiles - plane).max(axis=(1, 2)) < 1e-5

    def color_block_uniform(self, bx: int, by: int) -> bool:
        """The paper's color compression "only works for blocks of pixels
        with the same color".

        Uniformity is judged at the framebuffer's 8-bit precision — the
        stored surface is RGBA8, so colors within half an LSB are the same
        stored value.
        """
        return bool(
            self.color_blocks_uniform(
                np.asarray([bx], dtype=np.int64), np.asarray([by], dtype=np.int64)
            )[0]
        )

    def color_blocks_uniform(self, bx: np.ndarray, by: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`color_block_uniform` over block-coordinate arrays."""
        b = self.block
        if _native.available():
            flags = _native.blocks_uniform(
                self.color,
                b,
                np.ascontiguousarray(bx, dtype=np.int64),
                np.ascontiguousarray(by, dtype=np.int64),
            )
            return flags.view(bool)
        view = self.color.reshape(self.blocks_y, b, self.blocks_x, b, 4)
        quantized = np.clip(view[by, :, bx, :, :], 0.0, 1.0)
        first = quantized[:, :1, :1, :]
        return (
            np.abs(quantized - first).reshape(len(bx), -1).max(axis=1)
            < 0.5 / 255.0
        )

    # -- output ---------------------------------------------------------------
    def color_image(self) -> np.ndarray:
        """The rendered image, cropped to the true resolution, in [0, 1]."""
        return np.clip(self.color[: self.height, : self.width], 0.0, 1.0)

    def to_ppm(self, path) -> None:
        """Write the color buffer as a binary PPM (for the examples)."""
        img = (self.color_image()[:, :, :3] * 255.0 + 0.5).astype(np.uint8)
        with open(path, "wb") as fh:
            fh.write(f"P6 {self.width} {self.height} 255\n".encode())
            fh.write(img.tobytes())
