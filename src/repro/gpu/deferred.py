"""Tile-based deferred rendering (TBDR) analysis.

The paper closes its Hierarchical-Z discussion with: "further improvements
could be achieved ... using deferred rendering techniques [19]" (PowerVR's
tile-based deferred rendering).  A TBDR sorts fragments per tile before
shading, so only the finally-visible fragment of each opaque pixel is ever
shaded or textured.

This module estimates that bound for a forward-rendering workload by a trace
transformation: every frame's opaque draws are re-emitted as a depth-only
prepass (building the final depth buffer, which is exactly the information a
TBDR's per-tile sorting recovers) followed by the original draws with the
depth test at EQUAL — so shading, texturing and color traffic happen only
for visible fragments.  Comparing the transformed run against the immediate
run quantifies the shading/texturing work deferred rendering removes.

The idTech4 workloads are excluded by design: their z-prepass + EQUAL light
passes already implement the same idea in software ("kind of a software
based deferred rendering", Section III.D), which this analysis makes
measurable for the forward engines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.commands import BindProgram, Clear, Draw, SetState
from repro.api.state import StateMachine
from repro.api.trace import Frame, Trace
from repro.gpu.stats import MemClient
from repro.workloads.generator import GameWorkload


@dataclass(frozen=True)
class DeferredComparison:
    """Immediate vs deferred costs for the same frames."""

    frames: int
    immediate_shaded: int
    deferred_shaded: int
    immediate_texture_bytes: int
    deferred_texture_bytes: int
    immediate_bilinears: int
    deferred_bilinears: int

    @property
    def shading_saved(self) -> float:
        """Fraction of shaded fragments a TBDR would not shade."""
        if self.immediate_shaded == 0:
            return 0.0
        return 1.0 - self.deferred_shaded / self.immediate_shaded

    @property
    def texture_traffic_saved(self) -> float:
        if self.immediate_texture_bytes == 0:
            return 0.0
        return 1.0 - self.deferred_texture_bytes / self.immediate_texture_bytes


def defer_frame(frame: Frame) -> Frame:
    """Rewrite one frame: opaque draws get a depth prepass + EQUAL shading.

    Draws that are already depth-read-only (EQUAL / no depth write — extra
    blend passes) and non-draw calls pass through unchanged; the prepass
    covers exactly the draws that establish depth.
    """
    machine = StateMachine()
    prepass: list = []
    states_before_draws: list = []
    opaque_draws: list[Draw] = []
    for call in frame.calls:
        machine.apply(call)
        if isinstance(call, Draw):
            state = machine.state
            if state.depth_test and state.depth_write and state.depth_func in (
                "less",
                "lequal",
            ):
                opaque_draws.append((list(states_before_draws), call))
        else:
            states_before_draws.append(call)

    if not opaque_draws:
        return frame

    new_calls: list = [Clear()]
    # Depth-only prepass: replay the state stream so transforms are right,
    # with color writes masked and no fragment program.
    new_calls.append(SetState("color_mask", False))
    new_calls.append(BindProgram("fragment", None))
    seen = 0
    for states, draw in opaque_draws:
        for call in states[seen:]:
            if isinstance(call, (Clear,)):
                continue
            if isinstance(call, BindProgram) and call.stage == "fragment":
                continue
            if isinstance(call, SetState) and call.name in (
                "color_mask",
                "depth_func",
                "depth_write",
                "blend",
            ):
                continue
            new_calls.append(call)
        seen = len(states)
        new_calls.append(draw)

    # Main pass: original stream with opaque depth tests forced to EQUAL.
    new_calls.append(SetState("color_mask", True))
    replay = StateMachine()
    for call in frame.calls:
        replay.apply(call)
        if isinstance(call, Clear):
            continue  # already cleared; a second clear would drop the prepass
        if isinstance(call, Draw):
            state = replay.state
            if state.depth_test and state.depth_write and state.depth_func in (
                "less",
                "lequal",
            ):
                new_calls.append(SetState("depth_func", "equal"))
                new_calls.append(SetState("depth_write", False))
                new_calls.append(call)
                new_calls.append(SetState("depth_func", state.depth_func))
                new_calls.append(SetState("depth_write", True))
                continue
        new_calls.append(call)
    return Frame(frame.number, new_calls)


def defer_trace(trace: Trace) -> Trace:
    """A trace whose every frame has been rewritten by :func:`defer_frame`."""
    frames = [defer_frame(frame) for frame in trace.frames()]
    return Trace(trace.meta, frames)


def analyze(workload: GameWorkload, frames: int = 3) -> DeferredComparison:
    """Run a workload immediate and deferred; return the cost comparison."""
    if workload.spec.params.render_path == "stencil_shadow":
        raise ValueError(
            "stencil-shadow engines already render depth-first; the deferred "
            "analysis targets forward engines"
        )
    immediate = workload.simulate(frames=frames)
    sim = workload.simulator()
    deferred = sim.run_trace(defer_trace(workload.trace(frames=frames)))
    return DeferredComparison(
        frames=frames,
        immediate_shaded=immediate.stats.fragments_shaded,
        deferred_shaded=deferred.stats.fragments_shaded,
        immediate_texture_bytes=immediate.memory.client_bytes(MemClient.TEXTURE),
        deferred_texture_bytes=deferred.memory.client_bytes(MemClient.TEXTURE),
        immediate_bilinears=immediate.stats.bilinear_samples,
        deferred_bilinears=deferred.stats.bilinear_samples,
    )
