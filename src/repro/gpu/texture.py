"""Texture unit: sampling, filtering, LOD/anisotropy, and the cache pair.

Implements the dynamic texturing behaviour Table XIII characterizes: each
texture request costs a number of bilinear probes that depends on the filter
(1 bilinear, 2 trilinear, up to ``2*max_aniso`` anisotropic), with the
anisotropy ratio computed per quad from the UV footprint like the Feline
family of algorithms.  Texel traffic flows through a two-level cache: L0
holds decompressed 4x4-texel lines, L1 holds DXT-compressed memory lines;
L1 misses are the GDDR texture traffic of Tables XV-XVII.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.gpu import _native
from repro.gpu.caches import Cache
from repro.gpu.config import GpuConfig
from repro.gpu.memory import MemoryController
from repro.gpu.stats import MemClient
from repro.util.morton import morton2d


class TextureFormat(Enum):
    """Storage formats; value = bytes per 4x4 texel block in memory."""

    RGBA8 = 64
    DXT1 = 8
    DXT3 = 16
    DXT5 = 16

    @property
    def block_bytes(self) -> int:
        return self.value

    @property
    def bytes_per_texel(self) -> float:
        return self.value / 16.0


class TextureFilter(Enum):
    BILINEAR = "bilinear"
    TRILINEAR = "trilinear"
    ANISOTROPIC = "anisotropic"


@dataclass
class TextureResource:
    """An immutable mip-mapped 2D texture resident in GPU memory."""

    name: str
    mips: list[np.ndarray]  # each (h, w, 4) float32, halving per level
    format: TextureFormat = TextureFormat.DXT1
    base_address: int = 0  # assigned at registration

    @staticmethod
    def from_image(
        name: str,
        image: np.ndarray,
        format: TextureFormat = TextureFormat.DXT1,
    ) -> "TextureResource":
        """Build the full mip chain from a base image by box filtering."""
        base = np.asarray(image, dtype=np.float32)
        if base.ndim != 3 or base.shape[2] != 4:
            raise ValueError("image must be (h, w, 4)")
        h, w = base.shape[:2]
        if h & (h - 1) or w & (w - 1):
            raise ValueError("texture dimensions must be powers of two")
        mips = [base]
        while h > 1 or w > 1:
            nh, nw = max(1, h // 2), max(1, w // 2)
            prev = mips[-1]
            if h > 1 and w > 1:
                next_mip = prev.reshape(nh, 2, nw, 2, 4).mean(axis=(1, 3))
            elif h > 1:
                next_mip = prev.reshape(nh, 2, nw, 4).mean(axis=1)
            else:
                next_mip = prev.reshape(nh, nw, 2, 4).mean(axis=2)
            mips.append(next_mip.astype(np.float32))
            h, w = nh, nw
        return TextureResource(name=name, mips=mips, format=format)

    @property
    def width(self) -> int:
        return self.mips[0].shape[1]

    @property
    def height(self) -> int:
        return self.mips[0].shape[0]

    @property
    def levels(self) -> int:
        return len(self.mips)

    def mip_block_offsets(self) -> list[int]:
        """Byte offset of each mip level (in compressed blocks, Morton laid)."""
        offsets = []
        offset = 0
        for mip in self.mips:
            offsets.append(offset)
            blocks_x = -(-mip.shape[1] // 4)
            blocks_y = -(-mip.shape[0] // 4)
            # Morton layout needs a square power-of-two extent.
            extent = 1 << max(blocks_x - 1, blocks_y - 1, 1).bit_length()
            offset += extent * extent * self.format.block_bytes
        return offsets

    @property
    def compressed_bytes(self) -> int:
        total = sum(
            (-(-m.shape[1] // 4)) * (-(-m.shape[0] // 4)) for m in self.mips
        )
        return total * self.format.block_bytes


@dataclass
class TextureSampleStats:
    """Per-draw texture statistics pulled by the pipeline."""

    requests: int = 0
    bilinear_samples: int = 0

    def reset(self) -> "TextureSampleStats":
        snap = TextureSampleStats(self.requests, self.bilinear_samples)
        self.requests = 0
        self.bilinear_samples = 0
        return snap


class TextureUnit:
    """Sampler backend for the fragment interpreter plus cache/BW model."""

    def __init__(self, config: GpuConfig, memory: MemoryController):
        self.config = config
        self.memory = memory
        self.l0 = Cache(config.texture_l0)
        self.l1 = Cache(config.texture_l1)
        self._resources: dict[str, TextureResource] = {}
        self._next_base = 0
        self._bindings: dict[int, str] = {}
        self._filter = TextureFilter.ANISOTROPIC
        self._max_aniso = config.max_anisotropy
        self._coverage: np.ndarray | None = None
        self._mip_offsets: dict[str, np.ndarray] = {}
        self.stats = TextureSampleStats()

    # -- setup -------------------------------------------------------------
    def register(self, resource: TextureResource) -> TextureResource:
        """Place a texture in the GPU texture address space."""
        if resource.name in self._resources:
            return self._resources[resource.name]
        size = resource.compressed_bytes
        aligned = -(-size // 4096) * 4096
        resource.base_address = self._next_base
        self._next_base += aligned
        self._resources[resource.name] = resource
        return resource

    def bind(self, unit: int, name: str | None) -> None:
        if name is None:
            self._bindings.pop(unit, None)
        else:
            if name not in self._resources:
                raise KeyError(f"texture {name!r} not registered")
            self._bindings[unit] = name

    def invalidate_caches(self) -> None:
        """Drop L0/L1 contents (texture data is read-only, nothing to flush).

        Called at full-frame clears: a frame touches far more texels than
        the caches hold, so cross-frame reuse is negligible — dropping the
        contents at the frame boundary makes every frame's reference stream
        independent of the frames before it, which is what lets the farm
        shard a run by frame ranges bit-identically.  Hit/miss/access
        counters are preserved (they span the whole run).
        """
        for cache in (self.l0, self.l1):
            for cache_set in cache._sets:
                cache_set.clear()

    def set_filter(self, filter: TextureFilter, max_aniso: int | None = None) -> None:
        self._filter = filter
        if max_aniso is not None:
            self._max_aniso = max(1, min(max_aniso, self.config.max_anisotropy))

    def set_coverage(self, coverage: np.ndarray | None) -> None:
        """Lane coverage mask for the next program execution.

        Helper lanes still compute derivatives but only covered lanes count
        as requests and generate cache traffic.
        """
        self._coverage = coverage

    # -- the SamplerCallback protocol ---------------------------------------
    def __call__(self, unit: int, coords: np.ndarray) -> np.ndarray:
        name = self._bindings.get(unit)
        n = coords.shape[0]
        if name is None:
            return np.tile(np.array([1.0, 0.0, 1.0, 1.0]), (n, 1))  # debug pink
        resource = self._resources[name]
        if n % 4:
            raise ValueError("texture coords must be quad-aligned (N % 4 == 0)")
        u = coords[:, 0] * resource.width
        v = coords[:, 1] * resource.height

        lod, ratio, major_du, major_dv = self._footprint(u, v, resource)
        covered = (
            self._coverage
            if self._coverage is not None
            else np.ones(n, dtype=bool)
        )

        mip0 = np.floor(lod).astype(np.int64)
        trilinear = self._filter in (
            TextureFilter.TRILINEAR,
            TextureFilter.ANISOTROPIC,
        )
        mip_count = np.where(trilinear & (lod > 0) & (mip0 < resource.levels - 1), 2, 1)
        probes = ratio if self._filter is TextureFilter.ANISOTROPIC else np.ones_like(ratio)
        bilinears = probes * mip_count

        self.stats.requests += int(covered.sum())
        self.stats.bilinear_samples += int(bilinears[covered].sum())

        self._simulate_cache(
            resource, u, v, mip0, probes, mip_count, major_du, major_dv, covered
        )
        return self._bilinear(resource, u, v, mip0).astype(np.float64)

    # -- internals -----------------------------------------------------------
    def _footprint(self, u: np.ndarray, v: np.ndarray, resource: TextureResource):
        """Per-quad LOD and anisotropy from lane derivatives (broadcast to lanes)."""
        q = u.shape[0] // 4
        uq = u.reshape(q, 4)
        vq = v.reshape(q, 4)
        dudx = uq[:, 1] - uq[:, 0]
        dvdx = vq[:, 1] - vq[:, 0]
        dudy = uq[:, 2] - uq[:, 0]
        dvdy = vq[:, 2] - vq[:, 0]
        lx = np.hypot(dudx, dvdx)
        ly = np.hypot(dudy, dvdy)
        major = np.maximum(lx, ly)
        minor = np.minimum(lx, ly)
        if self._filter is TextureFilter.ANISOTROPIC:
            ratio = np.ceil(major / np.maximum(minor, 1e-6))
            ratio = np.clip(ratio, 1, self._max_aniso)
            lod_len = major / ratio
        else:
            ratio = np.ones(q)
            lod_len = major
        lod = np.log2(np.maximum(lod_len, 1e-6))
        lod = np.clip(lod, 0.0, resource.levels - 1.0)
        x_major = lx >= ly
        major_du = np.where(x_major, dudx, dudy)
        major_dv = np.where(x_major, dvdx, dvdy)

        def lanes(a: np.ndarray) -> np.ndarray:
            return np.repeat(a, 4)

        return lanes(lod), lanes(ratio), lanes(major_du), lanes(major_dv)

    def _simulate_cache(
        self,
        resource: TextureResource,
        u: np.ndarray,
        v: np.ndarray,
        mip0: np.ndarray,
        probes: np.ndarray,
        mip_count: np.ndarray,
        major_du: np.ndarray,
        major_dv: np.ndarray,
        covered: np.ndarray,
    ) -> None:
        """Generate the L0/L1/memory reference stream for covered lanes."""
        if not covered.any():
            return
        mip_offsets = self._mip_offsets.get(resource.name)
        if mip_offsets is None:
            mip_offsets = np.asarray(resource.mip_block_offsets(), dtype=np.int64)
            self._mip_offsets[resource.name] = mip_offsets
        max_probes = int(probes[covered].max())
        u_c = u[covered]
        v_c = v[covered]
        mip0_c = mip0[covered]
        probes_c = probes[covered]
        mips_c = mip_count[covered]
        du_c = major_du[covered]
        dv_c = major_dv[covered]
        block_bytes = resource.format.block_bytes
        if _native.available() and u_c.dtype == np.float64 and max_probes <= 64:
            # One fused pass: the kernel generates the probe-major reference
            # stream (bit-identical addresses to the numpy construction
            # below) and walks it through the L0 and L1 LRU state inline,
            # without materializing any intermediate.  The raw walk counts
            # exactly what the collapse passes in ``access_stream`` count:
            # those passes only drop guaranteed hits, which the walk scores
            # as hits anyway, and leave the same final LRU contents.
            mip0_i = np.ascontiguousarray(mip0_c, dtype=np.int64)
            probes_i = np.ascontiguousarray(probes_c, dtype=np.int64)
            mips_i = np.ascontiguousarray(mips_c, dtype=np.int64)
            bucket = np.empty(max(int(probes_i.sum()), 1), dtype=np.int64)
            l0_state = self.l0._export_state()
            l1_state = self.l1._export_state()
            counts = _native.texcache(
                np.ascontiguousarray(u_c),
                np.ascontiguousarray(v_c),
                np.ascontiguousarray(du_c, dtype=np.float64),
                np.ascontiguousarray(dv_c, dtype=np.float64),
                mip0_i,
                probes_i,
                mips_i,
                max_probes,
                resource.levels - 1,
                resource.width,
                resource.height,
                mip_offsets,
                resource.base_address,
                block_bytes,
                bucket,
                l0_state,
                (self.l0._nsets, self.l0._ways),
                l1_state,
                (self.l1._nsets, self.l1._ways),
                self.config.texture_l1.line_bytes,
            )
            if counts is not None:
                emitted, l0_hits, l0_misses, l1_hits, l1_misses = counts
                self.l0._import_state(*l0_state)
                self.l1._import_state(*l1_state)
                self.l0.accesses += emitted
                self.l0.hits += l0_hits
                self.l0.misses += l0_misses
                self.l1.accesses += l0_misses
                self.l1.hits += l1_hits
                self.l1.misses += l1_misses
                if l1_misses:
                    self.memory.read(
                        MemClient.TEXTURE,
                        l1_misses * self.config.texture_l1.line_bytes,
                    )
                return
        # The reference stream is probe-major: probe p of every lane that has
        # one (lane order), then probe p+1, ...  Materialize that (p, lane)
        # pair order once up front so every per-lane array is gathered a
        # single time — anisotropic draws take up to 16 probes per lane, and
        # re-gathering with a boolean mask per probe dominated this stage.
        if max_probes == 1:
            rows = np.zeros(probes_c.shape[0], dtype=np.int64)
            cols = np.arange(probes_c.shape[0])
        else:
            pair_mask = (
                np.arange(max_probes, dtype=np.int64)[:, None] < probes_c[None, :]
            )
            rows, cols = np.nonzero(pair_mask)
        # t in [-0.5, 0.5) along the anisotropy major axis (same float
        # expression as the per-probe form: rows is the probe index p).
        t_all = (rows + 0.5) / probes_c[cols] - 0.5
        pu_all = u_c[cols] + t_all * du_c[cols]
        pv_all = v_c[cols] + t_all * dv_c[cols]
        mip0_all = mip0_c[cols]
        mips_all = mips_c[cols]
        # Per mip step, compute both corner addresses for ALL pairs at once;
        # the probe-major assembly below is then pure slicing.
        step_addrs: dict[int, list[np.ndarray]] = {}
        step_bounds: dict[int, np.ndarray] = {}
        for level_step in (0, 1):
            gsel = mips_all > level_step
            if not gsel.any():
                continue
            level = np.minimum(mip0_all[gsel] + level_step, resource.levels - 1)
            # A bilinear probe reads a 2x2 texel footprint.  Reference its
            # two diagonal corners (at the sampled mip's texel pitch): they
            # bound the footprint's cache-line spread, so the hit rates
            # reflect texel traffic like Table XIV does, at half the
            # reference-stream cost of all four corners.  The mip geometry
            # is shared by both corners (same arithmetic as
            # _block_byte_addr, hoisted).
            clamped = np.minimum(level, 30)
            pitch = np.power(2.0, level.astype(np.float64))
            w = np.maximum(resource.width >> clamped, 1)
            h = np.maximum(resource.height >> clamped, 1)
            offs = resource.base_address + mip_offsets[
                np.minimum(level, len(mip_offsets) - 1)
            ]
            bu = pu_all[gsel]
            bv = pv_all[gsel]
            # pitch is an exact power of two, so dividing by it and
            # multiplying by its reciprocal round identically; likewise the
            # mip extents are powers of two, letting the wrap use a bit mask
            # (correct for negative pre-wrap texels in two's complement) and
            # the block split a shift.
            inv_pitch = 1.0 / pitch
            pow2_wrap = not (((w & (w - 1)) | (h & (h - 1))).any())
            corners = []
            for corner in (-0.5, 0.5):
                tx = np.floor((bu + corner * pitch) * inv_pitch).astype(np.int64)
                ty = np.floor((bv + corner * pitch) * inv_pitch).astype(np.int64)
                if pow2_wrap:
                    tx &= w - 1
                    ty &= h - 1
                else:
                    tx %= w
                    ty %= h
                block = morton2d(
                    (tx >> 2).astype(np.uint64), (ty >> 2).astype(np.uint64)
                ).astype(np.int64)
                corners.append(offs + block * block_bytes)
            step_addrs[level_step] = corners
            step_bounds[level_step] = np.searchsorted(
                rows[gsel], np.arange(max_probes + 1)
            )
        if not step_addrs:
            return
        l0_addr_parts: list[np.ndarray] = []
        for p in range(max_probes):
            for level_step, corners in step_addrs.items():
                bounds = step_bounds[level_step]
                s, e = int(bounds[p]), int(bounds[p + 1])
                if s == e:
                    continue
                l0_addr_parts.append(corners[0][s:e])
                l0_addr_parts.append(corners[1][s:e])
        if not l0_addr_parts:
            return
        self._account_l0_stream(np.concatenate(l0_addr_parts), block_bytes)

    def _account_l0_stream(
        self, block_addrs: np.ndarray, block_bytes: int
    ) -> None:
        """Run a block-address stream through L0 → L1 → memory."""
        if block_addrs.size == 0:
            return
        # One L0 line holds one decompressed 4x4 block.
        l0_lines = block_addrs // block_bytes
        l0_result = self.l0.access_stream(l0_lines, write=False)
        if l0_result.misses == 0:
            return
        # L0 misses fetch the compressed block through L1 (64 B lines hold
        # several DXT blocks, which is where compressed-space locality pays).
        miss_block_addrs = np.asarray(l0_result.miss_lines, dtype=np.int64) * block_bytes
        l1_lines = miss_block_addrs // self.config.texture_l1.line_bytes
        l1_result = self.l1.access_stream(l1_lines, write=False)
        if l1_result.misses:
            self.memory.read(
                MemClient.TEXTURE,
                l1_result.misses * self.config.texture_l1.line_bytes,
            )

    def _block_byte_addr(
        self,
        resource: TextureResource,
        u: np.ndarray,
        v: np.ndarray,
        level: np.ndarray,
        mip_offsets: np.ndarray,
    ) -> np.ndarray:
        """Compressed byte address of the 4x4 block holding texel (u, v).

        (u, v) are base-mip texel units; blocks are Morton-laid within each
        mip for 2D locality in the compressed address space.
        """
        scale = np.power(2.0, level.astype(np.float64))
        w = np.maximum(resource.width >> np.minimum(level, 30), 1)
        h = np.maximum(resource.height >> np.minimum(level, 30), 1)
        tx = np.floor(u / scale).astype(np.int64) % w
        ty = np.floor(v / scale).astype(np.int64) % h
        bx = tx // 4
        by = ty // 4
        block = morton2d(bx.astype(np.uint64), by.astype(np.uint64)).astype(np.int64)
        offs = np.asarray(mip_offsets, dtype=np.int64)[np.minimum(level, len(mip_offsets) - 1)]
        return resource.base_address + offs + block * resource.format.block_bytes

    def _flat_mips(
        self, resource: TextureResource
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None:
        """Flattened mip chain for the fused fetch kernel, memoized.

        Returns ``(flat, offs, hs, ws)`` — every RGBA float32 mip
        concatenated texel-major with per-level texel offsets and extents —
        or ``None`` when any mip is not a contiguous (h, w, 4) float32
        array.  The memo is keyed by resource name and identity-checked so
        a re-registered resource rebuilds its entry.
        """
        cache = getattr(self, "_flat_cache", None)
        if cache is None:
            cache = self._flat_cache = {}
        entry = cache.get(resource.name)
        if entry is not None and entry[0] is resource:
            return entry[1]
        for mip in resource.mips:
            if not (
                mip.dtype == np.float32
                and mip.flags.c_contiguous
                and mip.ndim == 3
                and mip.shape[2] == 4
            ):
                return None
        offs = np.zeros(len(resource.mips), dtype=np.int64)
        texels = 0
        for index, mip in enumerate(resource.mips):
            offs[index] = texels
            texels += mip.shape[0] * mip.shape[1]
        flat = np.concatenate([m.reshape(-1, 4) for m in resource.mips])
        flat = np.ascontiguousarray(flat, dtype=np.float32)
        hs = np.asarray([m.shape[0] for m in resource.mips], dtype=np.int64)
        ws = np.asarray([m.shape[1] for m in resource.mips], dtype=np.int64)
        packed = (flat, offs, hs, ws)
        cache[resource.name] = (resource, packed)
        return packed

    def __getstate__(self) -> dict:
        # The flattened-mip memo is derived workspace: it doubles the
        # texel payload and is rebuilt on demand, so keep it out of
        # pickled artifacts (content addressing needs minimal state).
        state = dict(self.__dict__)
        state.pop("_flat_cache", None)
        return state

    def _bilinear(
        self, resource: TextureResource, u: np.ndarray, v: np.ndarray, mip0: np.ndarray
    ) -> np.ndarray:
        """Bilinear color fetch at the floor mip (color approximation)."""
        use_native = _native.available()
        if use_native and u.dtype == np.float64 and v.dtype == np.float64:
            packed = self._flat_mips(resource)
            if packed is not None:
                # One fused pass over all lanes regardless of mip level;
                # per-lane arithmetic is the single-level kernel verbatim.
                flat, offs, hs, ws = packed
                fused = np.empty((u.shape[0], 4), dtype=np.float32)
                _native.bilinear_levels(
                    flat,
                    offs,
                    hs,
                    ws,
                    np.ascontiguousarray(u),
                    np.ascontiguousarray(v),
                    np.ascontiguousarray(mip0, dtype=np.int64),
                    fused,
                )
                return fused
        out = np.empty((u.shape[0], 4), dtype=np.float32)
        for level in np.unique(mip0):
            sel = mip0 == level
            mip = resource.mips[int(level)]
            if (
                use_native
                and u.dtype == np.float64
                and v.dtype == np.float64
                and mip.dtype == np.float32
                and mip.flags.c_contiguous
                and mip.shape[-1] == 4
            ):
                us = np.ascontiguousarray(u[sel])
                vs = np.ascontiguousarray(v[sel])
                res = np.empty((us.shape[0], 4), dtype=np.float32)
                _native.bilinear(mip, us, vs, int(level), res)
                out[sel] = res
                continue
            h, w = mip.shape[:2]
            mu = u[sel] / (1 << int(level)) - 0.5
            mv = v[sel] / (1 << int(level)) - 0.5
            x0 = np.floor(mu).astype(np.int64)
            y0 = np.floor(mv).astype(np.int64)
            fx = (mu - x0)[:, None]
            fy = (mv - y0)[:, None]
            x0w, x1w = x0 % w, (x0 + 1) % w
            y0w, y1w = y0 % h, (y0 + 1) % h
            # Flat-index gathers (one address computation per texel instead
            # of numpy's 2D fancy-index path); same texels, same colors.
            flat = mip.reshape(-1, mip.shape[-1])
            r0 = y0w * w
            r1 = y1w * w
            c00 = flat[r0 + x0w]
            c10 = flat[r0 + x1w]
            c01 = flat[r1 + x0w]
            c11 = flat[r1 + x1w]
            out[sel] = (
                c00 * (1 - fx) * (1 - fy)
                + c10 * fx * (1 - fy)
                + c01 * (1 - fx) * fy
                + c11 * fx * fy
            )
        return out
