"""Set-associative LRU cache model.

Used for the Z/stencil, color and texture (L0/L1) caches of Table XIV.  The
model is a functional hit/miss simulator: ``access`` returns whether the line
hit and which dirty line (if any) was evicted, so the calling stage can
account the memory traffic.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.gpu import _native
from repro.gpu.config import CacheConfig

#: Streams shorter than this stay on the Python loop: exporting/importing
#: the LRU state around the C kernel costs more than the loop itself.
_NATIVE_MIN_STREAM = 64


@dataclass
class StreamResult:
    """Result of a streamed cache access run."""

    misses: int
    # Byte addresses of evicted dirty lines / line indices that missed, in
    # reference order.  Lists from the Python loop, int64 arrays from the
    # compiled kernel — consumers iterate or wrap in np.asarray either way.
    dirty_evictions: "list[int] | np.ndarray"
    miss_lines: "list[int] | np.ndarray"


class Cache:
    """LRU set-associative cache over block addresses."""

    def __init__(self, config: CacheConfig):
        self.config = config
        # Geometry hoisted out of the per-line loops: the ``sets`` property
        # recomputes a division on every call, which dominates when the
        # simulator replays millions of references.
        self._nsets = config.sets
        self._ways = config.ways
        self._line_bytes = config.line_bytes
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(self._nsets)
        ]
        # Reusable kernel output buffers (grown geometrically) so long
        # streams don't pay a fresh allocation per call.
        self._miss_buf = np.empty(0, dtype=np.int64)
        self._evict_buf = np.empty(0, dtype=np.int64)
        self.hits = 0
        self.misses = 0
        # Raw reference count, *before* the duplicate/alternation collapse
        # passes.  ``hits + misses == accesses`` is a conservation invariant
        # (checked by repro.farm.invariants): every collapse optimization
        # must still account each dropped reference as a hit.
        self.accesses = 0

    def __getstate__(self) -> dict:
        # The kernel scratch buffers are workspace, not state: their unused
        # tails hold garbage from earlier (larger) streams, so pickling
        # them makes artifact bytes nondeterministic run to run.  Content
        # addressing (and the serve layer's bit-identity contract) needs
        # the pickle to be a pure function of the simulation.
        state = dict(self.__dict__)
        state["_miss_buf"] = None
        state["_evict_buf"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._miss_buf = np.empty(0, dtype=np.int64)
        self._evict_buf = np.empty(0, dtype=np.int64)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def line_of(self, addr: int) -> int:
        return addr // self.config.line_bytes

    def access(self, addr: int, write: bool = False) -> tuple[bool, int | None]:
        """Access the line containing byte address ``addr``.

        Returns ``(hit, evicted_dirty_line_addr)``; the evicted address is the
        byte address of the first byte of a dirty victim line, or ``None``.
        """
        line = self.line_of(addr)
        return self.access_line(line, write)

    def access_line(self, line: int, write: bool = False) -> tuple[bool, int | None]:
        """Like :meth:`access` but takes a pre-computed line index."""
        self.accesses += 1
        cache_set = self._sets[line % self._nsets]
        if line in cache_set:
            self.hits += 1
            cache_set.move_to_end(line)
            if write:
                cache_set[line] = True
            return True, None
        self.misses += 1
        evicted = None
        if len(cache_set) >= self._ways:
            victim_line, dirty = cache_set.popitem(last=False)
            if dirty:
                evicted = victim_line * self._line_bytes
        cache_set[line] = write
        return False, evicted

    def access_stream(
        self, lines: np.ndarray, write: bool = False
    ) -> "StreamResult":
        """Run a whole line-index stream.

        Consecutive duplicate lines are collapsed first — they are guaranteed
        hits and dominate rasterization-order streams, which keeps the Python
        loop short.  The collapsed references still count as hits so the
        Table XIV hit rates reflect the real reference stream.
        """
        lines = np.asarray(lines).reshape(-1)
        if lines.size == 0:
            return StreamResult(0, [], [])
        self.accesses += int(lines.size)
        if lines.size < _NATIVE_MIN_STREAM:
            # Short streams (per-triangle color groups dominate): the Python
            # loop on the raw stream beats the numpy collapse passes, and the
            # collapses are pure optimizations — results are identical.
            return self._run_python(lines.tolist(), write)
        keep = np.empty(lines.shape, dtype=bool)
        keep[0] = True
        np.not_equal(lines[1:], lines[:-1], out=keep[1:])
        collapsed = lines[keep]
        self.hits += int(lines.size - collapsed.size)
        collapsed = self._collapse_alternation(collapsed)
        return self._run_collapsed(collapsed, write)

    def _collapse_alternation(self, c: np.ndarray) -> np.ndarray:
        """Drop period-2 interior references (guaranteed hits, counted).

        In a run ``A B A B …`` every reference after the first pair hits:
        its line is one of the set's two most-recently-used entries (LRU
        with ``ways >= 2`` cannot have evicted it), and its recency effect
        is reproduced by the run's kept tail — an element is dropped only
        when the alternation continues past it, so each run's final one or
        two references survive and leave the recency order, dirty bits, and
        downstream miss/eviction behaviour identical.  Texture probes make
        such ping-pong streams constantly (two footprint corners per probe).
        """
        if self._ways < 2 or c.size < 4:
            return c
        drop = np.zeros(c.size, dtype=bool)
        drop[2:-1] = (c[2:-1] == c[:-3]) & (c[3:] == c[1:-2])
        dropped = int(drop.sum())
        if not dropped:
            return c
        self.hits += dropped
        return c[~drop]

    def access_runs(
        self, lines: np.ndarray, writes: np.ndarray
    ) -> "StreamResult":
        """Like :meth:`access_stream` with a per-reference write flag.

        Consecutive references to the same line are collapsed into one access
        whose write flag is the OR of the run (a line written anywhere in the
        run is dirty).
        """
        lines = np.asarray(lines).reshape(-1)
        writes = np.asarray(writes, dtype=bool).reshape(-1)
        if lines.size == 0:
            return StreamResult(0, [], [])
        self.accesses += int(lines.size)
        if lines.size < _NATIVE_MIN_STREAM:
            return self._run_python_flags(lines.tolist(), writes.tolist())
        boundaries = np.empty(lines.shape, dtype=bool)
        boundaries[0] = True
        np.not_equal(lines[1:], lines[:-1], out=boundaries[1:])
        starts = np.nonzero(boundaries)[0]
        run_writes = np.logical_or.reduceat(writes, starts)
        collapsed = lines[starts]
        self.hits += int(lines.size - collapsed.size)
        # Uniform write flags additionally admit the alternation collapse
        # (a dropped reference's dirty-bit effect is covered by the kept
        # first reference of its run, which carries the same flag).
        if not run_writes.any():
            return self._run_collapsed(self._collapse_alternation(collapsed), False)
        if run_writes.all():
            return self._run_collapsed(self._collapse_alternation(collapsed), True)
        return self._run_collapsed_flags(collapsed, run_writes)

    def _run_collapsed(self, collapsed: np.ndarray, write: bool) -> "StreamResult":
        """Run a pre-collapsed stream with one uniform write flag.

        Long streams go through the compiled LRU kernel when available; the
        Python loop below is the reference implementation and the fallback.
        """
        if collapsed.size >= _NATIVE_MIN_STREAM and _native.available():
            return self._run_native(collapsed, 1 if write else 0, None)
        return self._run_python(collapsed.tolist(), write)

    def _run_collapsed_flags(
        self, collapsed: np.ndarray, run_writes: np.ndarray
    ) -> "StreamResult":
        """:meth:`_run_collapsed` with a per-access write flag."""
        if collapsed.size >= _NATIVE_MIN_STREAM and _native.available():
            return self._run_native(
                collapsed, 2, np.ascontiguousarray(run_writes, dtype=np.uint8)
            )
        return self._run_python_flags(collapsed.tolist(), run_writes.tolist())

    def _export_state(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flatten the per-set LRU dicts into kernel arrays (MRU-first)."""
        nsets, ways = self._nsets, self._ways
        lines = np.zeros(nsets * ways, dtype=np.int64)
        dirty = np.zeros(nsets * ways, dtype=np.uint8)
        sizes = np.zeros(nsets, dtype=np.int64)
        for index, cache_set in enumerate(self._sets):
            size = len(cache_set)
            sizes[index] = size
            base = index * ways
            # OrderedDict iterates LRU → MRU; the kernel wants MRU first.
            slot = base + size - 1
            for line, is_dirty in cache_set.items():
                lines[slot] = line
                dirty[slot] = is_dirty
                slot -= 1
        return lines, dirty, sizes

    def _import_state(
        self, lines: np.ndarray, dirty: np.ndarray, sizes: np.ndarray
    ) -> None:
        """Rebuild the per-set LRU dicts from post-kernel arrays."""
        ways = self._ways
        line_list = lines.tolist()
        dirty_list = dirty.tolist()
        for index in range(self._nsets):
            cache_set: OrderedDict[int, bool] = OrderedDict()
            base = index * ways
            for slot in range(base + int(sizes[index]) - 1, base - 1, -1):
                cache_set[line_list[slot]] = bool(dirty_list[slot])
            self._sets[index] = cache_set

    def _run_native(
        self, collapsed: np.ndarray, write_mode: int, flags: np.ndarray | None
    ) -> "StreamResult":
        if self._miss_buf.size < collapsed.size:
            self._miss_buf = np.empty(2 * collapsed.size, dtype=np.int64)
            self._evict_buf = np.empty(2 * collapsed.size, dtype=np.int64)
        lines, dirty, sizes = self._export_state()
        hits, miss_lines, evictions = _native.lru_run(
            np.ascontiguousarray(collapsed, dtype=np.int64),
            write_mode,
            flags,
            lines,
            dirty,
            sizes,
            self._nsets,
            self._ways,
            self._line_bytes,
            self._miss_buf,
            self._evict_buf,
        )
        self._import_state(lines, dirty, sizes)
        self.hits += hits
        self.misses += miss_lines.size
        return StreamResult(miss_lines.size, evictions, miss_lines)

    def _run_python(self, collapsed: list[int], write: bool) -> "StreamResult":
        """Inlined LRU loop for a pre-collapsed stream, one write flag.

        Semantically identical to calling :meth:`access_line` per element;
        the loop is inlined (with geometry in locals and a direct-mapped
        single-set shortcut) because these few lines are the simulator's
        hottest Python code by an order of magnitude.
        """
        sets = self._sets
        nsets = self._nsets
        ways = self._ways
        line_bytes = self._line_bytes
        single = sets[0] if nsets == 1 else None
        hits = 0
        evictions: list[int] = []
        miss_lines: list[int] = []
        for line in collapsed:
            cache_set = single if single is not None else sets[line % nsets]
            if line in cache_set:
                hits += 1
                cache_set.move_to_end(line)
                if write:
                    cache_set[line] = True
                continue
            miss_lines.append(line)
            if len(cache_set) >= ways:
                victim_line, dirty = cache_set.popitem(last=False)
                if dirty:
                    evictions.append(victim_line * line_bytes)
            cache_set[line] = write
        self.hits += hits
        self.misses += len(miss_lines)
        return StreamResult(len(miss_lines), evictions, miss_lines)

    def _run_python_flags(
        self, collapsed: list[int], run_writes: list[bool]
    ) -> "StreamResult":
        """:meth:`_run_python` with a per-access write flag."""
        sets = self._sets
        nsets = self._nsets
        ways = self._ways
        line_bytes = self._line_bytes
        single = sets[0] if nsets == 1 else None
        hits = 0
        evictions: list[int] = []
        miss_lines: list[int] = []
        for line, write in zip(collapsed, run_writes):
            cache_set = single if single is not None else sets[line % nsets]
            if line in cache_set:
                hits += 1
                cache_set.move_to_end(line)
                if write:
                    cache_set[line] = True
                continue
            miss_lines.append(line)
            if len(cache_set) >= ways:
                victim_line, dirty = cache_set.popitem(last=False)
                if dirty:
                    evictions.append(victim_line * line_bytes)
            cache_set[line] = write
        self.hits += hits
        self.misses += len(miss_lines)
        return StreamResult(len(miss_lines), evictions, miss_lines)

    def flush(self) -> list[int]:
        """Evict everything; returns byte addresses of dirty lines."""
        dirty_lines: list[int] = []
        for cache_set in self._sets:
            for line, dirty in cache_set.items():
                if dirty:
                    dirty_lines.append(line * self.config.line_bytes)
            cache_set.clear()
        return dirty_lines

    def contains(self, addr: int) -> bool:
        line = self.line_of(addr)
        return line in self._sets[line % self.config.sets]

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0
