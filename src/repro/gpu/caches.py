"""Set-associative LRU cache model.

Used for the Z/stencil, color and texture (L0/L1) caches of Table XIV.  The
model is a functional hit/miss simulator: ``access`` returns whether the line
hit and which dirty line (if any) was evicted, so the calling stage can
account the memory traffic.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.gpu.config import CacheConfig


@dataclass
class StreamResult:
    """Result of a streamed cache access run."""

    misses: int
    dirty_evictions: list[int]  # byte addresses of evicted dirty lines
    miss_lines: list[int]  # line indices that missed, in reference order


class Cache:
    """LRU set-associative cache over block addresses."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(config.sets)
        ]
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def line_of(self, addr: int) -> int:
        return addr // self.config.line_bytes

    def access(self, addr: int, write: bool = False) -> tuple[bool, int | None]:
        """Access the line containing byte address ``addr``.

        Returns ``(hit, evicted_dirty_line_addr)``; the evicted address is the
        byte address of the first byte of a dirty victim line, or ``None``.
        """
        line = self.line_of(addr)
        return self.access_line(line, write)

    def access_line(self, line: int, write: bool = False) -> tuple[bool, int | None]:
        """Like :meth:`access` but takes a pre-computed line index."""
        cfg = self.config
        cache_set = self._sets[line % cfg.sets]
        if line in cache_set:
            self.hits += 1
            cache_set.move_to_end(line)
            if write:
                cache_set[line] = True
            return True, None
        self.misses += 1
        evicted = None
        if len(cache_set) >= cfg.ways:
            victim_line, dirty = cache_set.popitem(last=False)
            if dirty:
                evicted = victim_line * cfg.line_bytes
        cache_set[line] = write
        return False, evicted

    def access_stream(
        self, lines: np.ndarray, write: bool = False
    ) -> "StreamResult":
        """Run a whole line-index stream.

        Consecutive duplicate lines are collapsed first — they are guaranteed
        hits and dominate rasterization-order streams, which keeps the Python
        loop short.  The collapsed references still count as hits so the
        Table XIV hit rates reflect the real reference stream.
        """
        lines = np.asarray(lines).reshape(-1)
        if lines.size == 0:
            return StreamResult(0, [], [])
        keep = np.empty(lines.shape, dtype=bool)
        keep[0] = True
        np.not_equal(lines[1:], lines[:-1], out=keep[1:])
        collapsed = lines[keep]
        duplicate_hits = int(lines.size - collapsed.size)
        self.hits += duplicate_hits
        misses_before = self.misses
        evictions: list[int] = []
        miss_lines: list[int] = []
        access_line = self.access_line
        for line in collapsed.tolist():
            hit, evicted = access_line(line, write)
            if not hit:
                miss_lines.append(line)
            if evicted is not None:
                evictions.append(evicted)
        return StreamResult(self.misses - misses_before, evictions, miss_lines)

    def access_runs(
        self, lines: np.ndarray, writes: np.ndarray
    ) -> "StreamResult":
        """Like :meth:`access_stream` with a per-reference write flag.

        Consecutive references to the same line are collapsed into one access
        whose write flag is the OR of the run (a line written anywhere in the
        run is dirty).
        """
        lines = np.asarray(lines).reshape(-1)
        writes = np.asarray(writes, dtype=bool).reshape(-1)
        if lines.size == 0:
            return StreamResult(0, [], [])
        boundaries = np.empty(lines.shape, dtype=bool)
        boundaries[0] = True
        np.not_equal(lines[1:], lines[:-1], out=boundaries[1:])
        starts = np.nonzero(boundaries)[0]
        run_writes = np.logical_or.reduceat(writes, starts)
        collapsed = lines[starts]
        self.hits += int(lines.size - collapsed.size)
        misses_before = self.misses
        evictions: list[int] = []
        miss_lines: list[int] = []
        access_line = self.access_line
        for line, w in zip(collapsed.tolist(), run_writes.tolist()):
            hit, evicted = access_line(line, w)
            if not hit:
                miss_lines.append(line)
            if evicted is not None:
                evictions.append(evicted)
        return StreamResult(self.misses - misses_before, evictions, miss_lines)

    def flush(self) -> list[int]:
        """Evict everything; returns byte addresses of dirty lines."""
        dirty_lines: list[int] = []
        for cache_set in self._sets:
            for line, dirty in cache_set.items():
                if dirty:
                    dirty_lines.append(line * self.config.line_bytes)
            cache_set.clear()
        return dirty_lines

    def contains(self, addr: int) -> bool:
        line = self.line_of(addr)
        return line in self._sets[line % self.config.sets]

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0
