"""Clipping and face culling.

Implements the paper's "clipper stage": trivial rejection against the view
frustum (the Table VII "% clipped"), front/back-face and zero-area culling
("% culled"), and real polygon clipping against the near plane for the
triangles that cross it (needed for correct rasterization; such triangles
still count once as "traversed").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class ScreenTriangles:
    """Screen-space triangles ready for rasterization.

    ``xy``: (T, 3, 2) pixel coordinates; ``z``: (T, 3) depth in [0, 1];
    ``inv_w``: (T, 3) for perspective-correct interpolation; per-vertex
    attribute arrays; ``front``: per-triangle facing; ``parent``: index of
    the assembled source triangle (near-clip can split one into two).
    """

    xy: np.ndarray
    z: np.ndarray
    inv_w: np.ndarray
    uv: np.ndarray
    color: np.ndarray
    front: np.ndarray
    parent: np.ndarray

    @property
    def count(self) -> int:
        return self.xy.shape[0]


@dataclass
class ClipCullResult:
    triangles: ScreenTriangles
    assembled: int = 0
    clipped: int = 0
    culled: int = 0
    traversed: int = 0


_NEAR_EPS = 1e-6


def clip_and_cull(
    clip_positions: np.ndarray,
    triangles: np.ndarray,
    uv: np.ndarray,
    color: np.ndarray,
    width: int,
    height: int,
    cull: str = "back",
) -> ClipCullResult:
    """Run assembled triangles through frustum rejection, near clip and cull.

    ``clip_positions``: (V, 4) clip-space vertex positions; ``triangles``:
    (T, 3) vertex indices; ``uv``/(V, 2) and ``color``/(V, 4) per-vertex
    attributes carried to rasterization.
    """
    pos = np.asarray(clip_positions, dtype=np.float64)
    tris = np.asarray(triangles, dtype=np.int64).reshape(-1, 3)
    t_count = tris.shape[0]
    if t_count == 0:
        return ClipCullResult(_empty_screen_triangles(), 0, 0, 0, 0)

    x, y, z, w = pos[:, 0], pos[:, 1], pos[:, 2], pos[:, 3]
    outside = np.stack(
        [x < -w, x > w, y < -w, y > w, z < -w, z > w], axis=1
    )  # (V, 6)
    tri_outside = outside[tris]  # (T, 3, 6)
    rejected = tri_outside.all(axis=1).any(axis=1)
    clipped_count = int(rejected.sum())
    survivors = np.nonzero(~rejected)[0]

    # Near-plane crossers need geometric clipping; everything else can be
    # perspective-divided directly (the rasterizer clamps to the viewport,
    # acting as an infinite guard band for the side planes).
    near_out = (z + w < _NEAR_EPS)[tris[survivors]]
    crosses_near = near_out.any(axis=1)
    easy = survivors[~crosses_near]
    hard = survivors[crosses_near]

    out_xy: list[np.ndarray] = []
    out_z: list[np.ndarray] = []
    out_inv_w: list[np.ndarray] = []
    out_uv: list[np.ndarray] = []
    out_color: list[np.ndarray] = []
    out_parent: list[np.ndarray] = []

    if easy.size:
        vids = tris[easy]  # (E, 3)
        p = pos[vids]  # (E, 3, 4)
        a_uv = uv[vids]
        a_color = color[vids]
        sx, sy, sz, inv_w = _viewport(p, width, height)
        out_xy.append(np.stack([sx, sy], axis=-1))
        out_z.append(sz)
        out_inv_w.append(inv_w)
        out_uv.append(a_uv)
        out_color.append(a_color)
        out_parent.append(easy)

    for t in hard:
        polys = _clip_near(pos[tris[t]], uv[tris[t]], color[tris[t]])
        for p, a_uv, a_color in polys:
            sx, sy, sz, inv_w = _viewport(p[None, :, :], width, height)
            out_xy.append(np.stack([sx, sy], axis=-1))
            out_z.append(sz)
            out_inv_w.append(inv_w)
            out_uv.append(a_uv[None, :, :])
            out_color.append(a_color[None, :, :])
            out_parent.append(np.array([t]))

    if not out_xy:
        return ClipCullResult(
            _empty_screen_triangles(), t_count, clipped_count, t_count - clipped_count, 0
        )

    xy = np.concatenate(out_xy)
    zs = np.concatenate(out_z)
    inv_ws = np.concatenate(out_inv_w)
    uvs = np.concatenate(out_uv)
    colors = np.concatenate(out_color)
    parents = np.concatenate(out_parent)

    # Face culling on signed screen area.  Source meshes wind CCW in NDC
    # for front faces; the viewport Y flip makes them clockwise on screen,
    # i.e. negative signed area.
    area2 = _signed_area2(xy)
    front = area2 < 0.0
    degenerate = area2 == 0.0
    if cull == "back":
        keep = front & ~degenerate
    elif cull == "front":
        keep = ~front & ~degenerate
    elif cull == "none":
        keep = ~degenerate
    else:
        raise ValueError(f"unknown cull mode {cull!r}")

    surviving_parents = np.unique(parents[keep])
    traversed = int(surviving_parents.size)
    culled = t_count - clipped_count - traversed

    result = ScreenTriangles(
        xy=xy[keep],
        z=zs[keep],
        inv_w=inv_ws[keep],
        uv=uvs[keep],
        color=colors[keep],
        front=front[keep],
        parent=parents[keep],
    )
    return ClipCullResult(result, t_count, clipped_count, culled, traversed)


def _signed_area2(xy: np.ndarray) -> np.ndarray:
    """Twice the signed area of (T, 3, 2) screen triangles."""
    e1 = xy[:, 1] - xy[:, 0]
    e2 = xy[:, 2] - xy[:, 0]
    return e1[:, 0] * e2[:, 1] - e1[:, 1] * e2[:, 0]


def _viewport(p: np.ndarray, width: int, height: int):
    """Perspective divide + viewport transform for (T, 3, 4) positions."""
    w = p[..., 3]
    safe_w = np.where(np.abs(w) < _NEAR_EPS, _NEAR_EPS, w)
    inv_w = 1.0 / safe_w
    ndc = p[..., :3] * inv_w[..., None]
    sx = (ndc[..., 0] + 1.0) * 0.5 * width
    sy = (1.0 - ndc[..., 1]) * 0.5 * height
    sz = (ndc[..., 2] + 1.0) * 0.5
    return sx, sy, np.clip(sz, 0.0, 1.0), inv_w


def _clip_near(p: np.ndarray, uv: np.ndarray, color: np.ndarray):
    """Sutherland-Hodgman clip of one triangle against z + w = 0.

    Interpolation happens in clip space (linear there), then the resulting
    polygon is fanned back into triangles.
    """
    inside = p[:, 2] + p[:, 3] >= _NEAR_EPS
    if not inside.any():
        return []
    verts: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    for i in range(3):
        j = (i + 1) % 3
        pi, pj = p[i], p[j]
        di = pi[2] + pi[3]
        dj = pj[2] + pj[3]
        if inside[i]:
            verts.append((pi, uv[i], color[i]))
        if inside[i] != inside[j]:
            t = di / (di - dj)
            verts.append(
                (
                    pi + t * (pj - pi),
                    uv[i] + t * (uv[j] - uv[i]),
                    color[i] + t * (color[j] - color[i]),
                )
            )
    polys = []
    for k in range(1, len(verts) - 1):
        tri_p = np.stack([verts[0][0], verts[k][0], verts[k + 1][0]])
        tri_uv = np.stack([verts[0][1], verts[k][1], verts[k + 1][1]])
        tri_c = np.stack([verts[0][2], verts[k][2], verts[k + 1][2]])
        polys.append((tri_p, tri_uv, tri_c))
    return polys


def _empty_screen_triangles() -> ScreenTriangles:
    return ScreenTriangles(
        xy=np.empty((0, 3, 2)),
        z=np.empty((0, 3)),
        inv_w=np.empty((0, 3)),
        uv=np.empty((0, 3, 2)),
        color=np.empty((0, 3, 4)),
        front=np.empty(0, dtype=bool),
        parent=np.empty(0, dtype=np.int64),
    )
