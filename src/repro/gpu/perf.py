"""Coarse throughput model: cycles and frame-rate estimates.

The reproduction is functional, but the Table II machine rates allow a
bottleneck-style estimate: each stage needs ``events / rate`` cycles, the
frame needs the maximum (stages overlap in a pipelined GPU), and memory adds
its own bound.  Used by the examples; no paper table depends on it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.config import GpuConfig
from repro.gpu.memory import MemoryController
from repro.gpu.stats import GpuStats
from repro.observe import metrics as obs_metrics
from repro.observe import spans as obs_spans


@dataclass(frozen=True)
class PerfEstimate:
    """Per-stage cycle requirements for a simulated run."""

    vertex_cycles: float
    setup_cycles: float
    zstencil_cycles: float
    shader_cycles: float
    texture_cycles: float
    color_cycles: float
    memory_cycles: float
    frames: int

    @property
    def cycles_per_frame(self) -> float:
        bound = max(
            self.vertex_cycles,
            self.setup_cycles,
            self.zstencil_cycles,
            self.shader_cycles,
            self.texture_cycles,
            self.color_cycles,
            self.memory_cycles,
        )
        return bound / max(self.frames, 1)

    @property
    def bottleneck(self) -> str:
        stages = {
            "vertex": self.vertex_cycles,
            "setup": self.setup_cycles,
            "zstencil": self.zstencil_cycles,
            "shader": self.shader_cycles,
            "texture": self.texture_cycles,
            "color": self.color_cycles,
            "memory": self.memory_cycles,
        }
        return max(stages, key=stages.get)

    def fps_at_clock(self, clock_hz: float = 625e6) -> float:
        """Frames/second at a given core clock (R520 shipped at 625 MHz)."""
        cycles = self.cycles_per_frame
        return clock_hz / cycles if cycles else float("inf")


def estimate(
    stats: GpuStats, memory: MemoryController, config: GpuConfig
) -> PerfEstimate:
    """Build a :class:`PerfEstimate` from simulation statistics."""
    shader_ops = stats.vertex_instructions + stats.fragment_instructions
    est = PerfEstimate(
        vertex_cycles=stats.vertices_shaded / max(config.shader_units, 1),
        setup_cycles=stats.triangles_assembled / config.triangles_per_cycle,
        zstencil_cycles=stats.fragments_zstencil / config.zstencil_rate,
        shader_cycles=shader_ops / (config.shader_units * 4),  # 4-wide ALUs
        texture_cycles=stats.bilinear_samples / config.bilinears_per_cycle,
        color_cycles=stats.fragments_blended / config.color_rate,
        memory_cycles=memory.total_bytes / config.memory_bytes_per_cycle,
        frames=stats.frames,
    )
    if obs_spans.enabled():
        reg = obs_metrics.registry()
        reg.gauge("gpu.perf.cycles_per_frame").set(est.cycles_per_frame)
        for stage in (
            "vertex", "setup", "zstencil", "shader", "texture", "color",
            "memory",
        ):
            reg.gauge(f"gpu.perf.{stage}_cycles").set(
                getattr(est, f"{stage}_cycles")
            )
    return est
