"""Plain-text table formatting for the experiment reports."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Format ``rows`` under ``headers`` as an aligned plain-text table.

    Numbers are right-aligned, text left-aligned; floats are rendered with up
    to four significant decimals, matching the precision the paper reports.
    """
    rendered: list[list[str]] = [[_cell(h) for h in headers]]
    for row in rows:
        rendered.append([_cell(v) for v in row])
    widths = [max(len(r[c]) for r in rendered) for c in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    for i, row in enumerate(rendered):
        cells = []
        for c, text in enumerate(row):
            source = headers if i == 0 else None
            is_num = source is None and _is_number_text(text)
            cells.append(text.rjust(widths[c]) if is_num else text.ljust(widths[c]))
        lines.append(" | ".join(cells))
        if i == 0:
            lines.append(sep)
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000 or value == int(value):
            return f"{value:,.0f}" if abs(value) >= 1000 else f"{value:.0f}"
        return f"{value:.4g}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def _is_number_text(text: str) -> bool:
    stripped = text.replace(",", "").replace("%", "").strip()
    if not stripped or stripped == "-":
        return True
    try:
        float(stripped)
        return True
    except ValueError:
        return False
