"""Shared helpers: small vector math, Morton codes, text plotting, tables."""

from repro.util.mathutil import (
    normalize,
    perspective,
    look_at,
    translate,
    rotate_y,
    rotate_x,
    scale as scale_matrix,
    identity,
)
from repro.util.morton import morton2d, demorton2d
from repro.util.asciiplot import ascii_series, sparkline
from repro.util.tables import format_table

__all__ = [
    "normalize",
    "perspective",
    "look_at",
    "translate",
    "rotate_y",
    "rotate_x",
    "scale_matrix",
    "identity",
    "morton2d",
    "demorton2d",
    "ascii_series",
    "sparkline",
    "format_table",
]
