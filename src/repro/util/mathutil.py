"""Small 3D math helpers used by the geometry stage and the workloads.

All matrices are 4x4 ``float64`` numpy arrays in row-vector-on-the-right
convention (``clip = M @ position``), matching the classic OpenGL fixed
function stack the paper's workloads were written against.
"""

from __future__ import annotations

import math

import numpy as np


def identity() -> np.ndarray:
    """Return a 4x4 identity matrix."""
    return np.eye(4, dtype=np.float64)


def normalize(v: np.ndarray) -> np.ndarray:
    """Return ``v`` scaled to unit length (zero vectors are returned as-is)."""
    v = np.asarray(v, dtype=np.float64)
    n = np.linalg.norm(v)
    if n == 0.0:
        return v
    return v / n


def translate(tx: float, ty: float, tz: float) -> np.ndarray:
    """Return a translation matrix."""
    m = identity()
    m[0, 3] = tx
    m[1, 3] = ty
    m[2, 3] = tz
    return m


def scale(sx: float, sy: float, sz: float) -> np.ndarray:
    """Return a non-uniform scale matrix."""
    m = identity()
    m[0, 0] = sx
    m[1, 1] = sy
    m[2, 2] = sz
    return m


def rotate_y(angle_rad: float) -> np.ndarray:
    """Return a rotation about the +Y axis."""
    c, s = math.cos(angle_rad), math.sin(angle_rad)
    m = identity()
    m[0, 0] = c
    m[0, 2] = s
    m[2, 0] = -s
    m[2, 2] = c
    return m


def rotate_x(angle_rad: float) -> np.ndarray:
    """Return a rotation about the +X axis."""
    c, s = math.cos(angle_rad), math.sin(angle_rad)
    m = identity()
    m[1, 1] = c
    m[1, 2] = -s
    m[2, 1] = s
    m[2, 2] = c
    return m


def perspective(fovy_deg: float, aspect: float, znear: float, zfar: float) -> np.ndarray:
    """Return an OpenGL-style perspective projection matrix.

    Maps the view frustum to the clip volume ``-w <= x,y,z <= w``.
    """
    if znear <= 0 or zfar <= znear:
        raise ValueError("require 0 < znear < zfar")
    f = 1.0 / math.tan(math.radians(fovy_deg) / 2.0)
    m = np.zeros((4, 4), dtype=np.float64)
    m[0, 0] = f / aspect
    m[1, 1] = f
    m[2, 2] = (zfar + znear) / (znear - zfar)
    m[2, 3] = (2.0 * zfar * znear) / (znear - zfar)
    m[3, 2] = -1.0
    return m


def look_at(eye, target, up=(0.0, 1.0, 0.0)) -> np.ndarray:
    """Return a right-handed view matrix looking from ``eye`` towards ``target``."""
    eye = np.asarray(eye, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    fwd = normalize(target - eye)
    if np.linalg.norm(fwd) == 0.0:
        raise ValueError("eye and target coincide")
    side = normalize(np.cross(fwd, np.asarray(up, dtype=np.float64)))
    true_up = np.cross(side, fwd)
    m = identity()
    m[0, :3] = side
    m[1, :3] = true_up
    m[2, :3] = -fwd
    m[0, 3] = -side @ eye
    m[1, 3] = -true_up @ eye
    m[2, 3] = fwd @ eye
    return m


def transform_points(matrix: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Apply a 4x4 matrix to an (N, 3) array of points, returning (N, 4) clip coords."""
    points = np.asarray(points, dtype=np.float64)
    homo = np.empty((points.shape[0], 4), dtype=np.float64)
    homo[:, :3] = points
    homo[:, 3] = 1.0
    return homo @ matrix.T


def transform_directions(matrix: np.ndarray, dirs: np.ndarray) -> np.ndarray:
    """Apply the rotational part of a 4x4 matrix to an (N, 3) array of directions."""
    dirs = np.asarray(dirs, dtype=np.float64)
    return dirs @ matrix[:3, :3].T
