"""Terminal plotting for the experiment harness.

The paper's figures are per-frame time series.  The benchmark harness renders
each series both as CSV (for external plotting) and as a compact ASCII chart
so the shape is visible directly in the bench log.
"""

from __future__ import annotations

import math
from typing import Sequence

_SPARK_CHARS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int = 72) -> str:
    """Render ``values`` as a one-line density sparkline of ``width`` chars."""
    values = [float(v) for v in values]
    if not values:
        return ""
    resampled = _resample(values, width)
    lo, hi = min(resampled), max(resampled)
    span = (hi - lo) or 1.0
    out = []
    for v in resampled:
        idx = int((v - lo) / span * (len(_SPARK_CHARS) - 1))
        out.append(_SPARK_CHARS[idx])
    return "".join(out)


def ascii_series(
    series: dict[str, Sequence[float]],
    width: int = 72,
    height: int = 12,
    title: str = "",
    logy: bool = False,
) -> str:
    """Render one or more named series as a multi-line ASCII chart.

    Each series gets a distinct glyph; the legend maps glyphs to names.
    ``logy`` plots log10 of the values (zeros clamped), mirroring the paper's
    logarithmic state-call plots (Fig. 3).
    """
    glyphs = "ox+*#@%&"
    names = list(series)
    prepared: dict[str, list[float]] = {}
    for name in names:
        vals = [float(v) for v in series[name]]
        if logy:
            vals = [math.log10(max(v, 1e-9)) for v in vals]
        prepared[name] = _resample(vals, width)
    flat = [v for vals in prepared.values() for v in vals]
    if not flat:
        return title
    lo, hi = min(flat), max(flat)
    span = (hi - lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for si, name in enumerate(names):
        glyph = glyphs[si % len(glyphs)]
        for x, v in enumerate(prepared[name]):
            y = int((v - lo) / span * (height - 1))
            grid[height - 1 - y][x] = glyph
    lines = []
    if title:
        lines.append(title)
    top_label = f"{hi:.4g}" + (" (log10)" if logy else "")
    lines.append(top_label)
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width + f"  {lo:.4g}")
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]}={name}" for i, name in enumerate(names)
    )
    lines.append(legend)
    return "\n".join(lines)


def _resample(values: list[float], width: int) -> list[float]:
    """Average-bin ``values`` down (or index-stretch up) to ``width`` samples."""
    n = len(values)
    if n == 0:
        return []
    if n <= width:
        return [values[int(i * n / width)] for i in range(width)]
    out = []
    for i in range(width):
        a = int(i * n / width)
        b = max(a + 1, int((i + 1) * n / width))
        chunk = values[a:b]
        out.append(sum(chunk) / len(chunk))
    return out
