"""Morton (Z-order) curve helpers.

GPU memory layouts tile 2D surfaces (textures, framebuffers) along a
space-filling curve so that 2D-local accesses map to nearby addresses.  The
simulator uses Morton order for texture block addressing, which is what gives
the texture caches their high spatial hit rates (paper Table XIV).
"""

from __future__ import annotations

import numpy as np

_PART_TABLE = None


def _part_table() -> np.ndarray:
    """Lookup table spreading the low 16 bits of an int into even bit slots."""
    global _PART_TABLE
    if _PART_TABLE is None:
        n = np.arange(1 << 16, dtype=np.uint64)
        x = n
        x = (x | (x << 8)) & np.uint64(0x00FF00FF00FF00FF)
        x = (x | (x << 4)) & np.uint64(0x0F0F0F0F0F0F0F0F)
        x = (x | (x << 2)) & np.uint64(0x3333333333333333)
        x = (x | (x << 1)) & np.uint64(0x5555555555555555)
        _PART_TABLE = x
    return _PART_TABLE


def morton2d(x, y):
    """Interleave the bits of ``x`` and ``y`` (arrays or scalars, < 2**16)."""
    table = _part_table()
    xs = table[np.asarray(x, dtype=np.uint64)]
    ys = table[np.asarray(y, dtype=np.uint64)]
    return xs | (ys << np.uint64(1))


def demorton2d(code):
    """Inverse of :func:`morton2d`; returns ``(x, y)``."""
    code = np.asarray(code, dtype=np.uint64)

    def compact(v: np.ndarray) -> np.ndarray:
        v = v & np.uint64(0x5555555555555555)
        v = (v | (v >> np.uint64(1))) & np.uint64(0x3333333333333333)
        v = (v | (v >> np.uint64(2))) & np.uint64(0x0F0F0F0F0F0F0F0F)
        v = (v | (v >> np.uint64(4))) & np.uint64(0x00FF00FF00FF00FF)
        v = (v | (v >> np.uint64(8))) & np.uint64(0x0000FFFF0000FFFF)
        return v

    return compact(code), compact(code >> np.uint64(1))
