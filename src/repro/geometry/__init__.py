"""Geometry substrate: meshes, primitive assembly, procedural generators."""

from repro.geometry.primitives import (
    PrimitiveType,
    primitive_count,
    assemble_triangles,
)
from repro.geometry.mesh import Mesh, VertexLayout
from repro.geometry.generators import (
    grid_mesh,
    box_mesh,
    room_mesh,
    terrain_mesh,
    cylinder_mesh,
    character_mesh,
    extrude_shadow_volume,
)
from repro.geometry.optimize import (
    optimize_for_vertex_cache,
    simulate_vertex_cache,
)

__all__ = [
    "PrimitiveType",
    "primitive_count",
    "assemble_triangles",
    "Mesh",
    "VertexLayout",
    "grid_mesh",
    "box_mesh",
    "room_mesh",
    "terrain_mesh",
    "cylinder_mesh",
    "character_mesh",
    "extrude_shadow_volume",
    "optimize_for_vertex_cache",
    "simulate_vertex_cache",
]
