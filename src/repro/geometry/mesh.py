"""Mesh container: vertex arrays + an index stream + a primitive topology."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.primitives import PrimitiveType, assemble_triangles, primitive_count


@dataclass(frozen=True)
class VertexLayout:
    """Byte layout of one vertex in the GPU-resident vertex buffer.

    The paper's Table XVII "bytes per vertex" depends on how fat each
    engine's vertex format is (position/normal/uv/color/tangent/uv1); the
    flags here mirror the arrays a :class:`Mesh` actually carries.
    """

    has_normal: bool = True
    has_uv: bool = True
    has_color: bool = False
    has_tangent: bool = False
    has_uv1: bool = False

    @property
    def stride_bytes(self) -> int:
        """Size of one vertex: float3 position plus the enabled attributes."""
        stride = 12
        if self.has_normal:
            stride += 12
        if self.has_uv:
            stride += 8
        if self.has_color:
            stride += 4
        if self.has_tangent:
            stride += 12
        if self.has_uv1:
            stride += 8
        return stride


@dataclass
class Mesh:
    """Indexed triangle geometry, the unit the engines upload at startup.

    ``index_size_bytes`` is 2 or 4 and, per the paper, is constant per
    middleware (Unreal/Source/Lithtech use 16-bit indices, idTech4 32-bit).
    """

    name: str
    positions: np.ndarray
    indices: np.ndarray
    primitive: PrimitiveType = PrimitiveType.TRIANGLE_LIST
    normals: np.ndarray | None = None
    uvs: np.ndarray | None = None
    colors: np.ndarray | None = None
    index_size_bytes: int = 2
    extra_attributes: int = 0  # tangent/uv1-style padding attributes
    _bounds: tuple[np.ndarray, np.ndarray] | None = field(
        default=None, init=False, repr=False
    )

    def __post_init__(self) -> None:
        self.positions = np.asarray(self.positions, dtype=np.float64).reshape(-1, 3)
        self.indices = np.asarray(self.indices, dtype=np.int32).reshape(-1)
        if self.index_size_bytes not in (2, 4):
            raise ValueError("index_size_bytes must be 2 or 4")
        n = self.vertex_count
        if self.indices.size and (self.indices.min() < 0 or self.indices.max() >= n):
            raise ValueError(f"{self.name}: indices out of range [0, {n})")
        if self.normals is None:
            self.normals = self._compute_normals()
        else:
            self.normals = np.asarray(self.normals, dtype=np.float64).reshape(-1, 3)
        if self.uvs is None:
            self.uvs = self._planar_uvs()
        else:
            self.uvs = np.asarray(self.uvs, dtype=np.float64).reshape(-1, 2)
        if self.colors is not None:
            self.colors = np.asarray(self.colors, dtype=np.float64).reshape(-1, 4)
        for attr_name in ("normals", "uvs", "colors"):
            arr = getattr(self, attr_name)
            if arr is not None and arr.shape[0] != n:
                raise ValueError(f"{self.name}: {attr_name} count != vertex count")

    @property
    def vertex_count(self) -> int:
        return self.positions.shape[0]

    @property
    def index_count(self) -> int:
        return int(self.indices.size)

    @property
    def triangle_count(self) -> int:
        return primitive_count(self.index_count, self.primitive)

    @property
    def layout(self) -> VertexLayout:
        return VertexLayout(
            has_normal=True,
            has_uv=True,
            has_color=self.colors is not None,
            has_tangent=self.extra_attributes >= 1,
            has_uv1=self.extra_attributes >= 2,
        )

    @property
    def vertex_size_bytes(self) -> int:
        return self.layout.stride_bytes

    def triangles(self) -> np.ndarray:
        """Assembled ``(T, 3)`` triangle index array."""
        return assemble_triangles(self.indices, self.primitive)

    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Axis-aligned (min, max) corners of the mesh."""
        if self._bounds is None:
            if self.vertex_count == 0:
                zero = np.zeros(3)
                self._bounds = (zero, zero)
            else:
                self._bounds = (self.positions.min(axis=0), self.positions.max(axis=0))
        return self._bounds

    def bounding_sphere(self) -> tuple[np.ndarray, float]:
        """Center and radius of a bounding sphere (from the AABB)."""
        lo, hi = self.bounds()
        center = (lo + hi) / 2.0
        radius = float(np.linalg.norm(hi - center))
        return center, radius

    def _compute_normals(self) -> np.ndarray:
        """Area-weighted vertex normals from the triangle faces."""
        normals = np.zeros_like(self.positions)
        tris = self.triangles()
        if tris.shape[0] == 0:
            normals[:, 1] = 1.0
            return normals
        p0 = self.positions[tris[:, 0]]
        e1 = self.positions[tris[:, 1]] - p0
        e2 = self.positions[tris[:, 2]] - p0
        face = np.cross(e1, e2)
        for c in range(3):
            np.add.at(normals, tris[:, c], face)
        lengths = np.linalg.norm(normals, axis=1, keepdims=True)
        lengths[lengths == 0.0] = 1.0
        return normals / lengths

    def _planar_uvs(self) -> np.ndarray:
        """Fallback planar UVs over the dominant extent (tiled ~4x)."""
        lo, hi = self.bounds()
        span = np.maximum(hi - lo, 1e-9)
        axes = np.argsort(span)[-2:]
        uv = (self.positions[:, sorted(axes)] - lo[sorted(axes)]) / span[
            sorted(axes)
        ]
        return uv * 4.0
