"""Primitive types and primitive assembly.

The paper's Table V shows that modern games use almost exclusively triangle
lists even though strips and fans share vertices "for free" — the
post-transform vertex cache recovers the sharing for lists.  The assembly
rules here follow the OpenGL specification.
"""

from __future__ import annotations

from enum import Enum

import numpy as np


class PrimitiveType(Enum):
    """Triangle topologies observed in the paper's workloads."""

    TRIANGLE_LIST = "TL"
    TRIANGLE_STRIP = "TS"
    TRIANGLE_FAN = "TF"


def primitive_count(index_count: int, primitive: PrimitiveType) -> int:
    """Number of triangles assembled from ``index_count`` indices.

    >>> primitive_count(9, PrimitiveType.TRIANGLE_LIST)
    3
    >>> primitive_count(9, PrimitiveType.TRIANGLE_STRIP)
    7
    """
    if index_count < 3:
        return 0
    if primitive is PrimitiveType.TRIANGLE_LIST:
        return index_count // 3
    return index_count - 2


def indices_for_triangles(triangle_count: int, primitive: PrimitiveType) -> int:
    """Inverse of :func:`primitive_count`: indices needed for N triangles."""
    if triangle_count <= 0:
        return 0
    if primitive is PrimitiveType.TRIANGLE_LIST:
        return triangle_count * 3
    return triangle_count + 2


def assemble_triangles(indices: np.ndarray, primitive: PrimitiveType) -> np.ndarray:
    """Assemble an index stream into a ``(T, 3)`` array of triangles.

    Strip winding alternates per the OpenGL rule so that face orientation is
    consistent; fans pivot on the first index.
    """
    indices = np.asarray(indices)
    n = indices.shape[0]
    count = primitive_count(n, primitive)
    if count == 0:
        return np.empty((0, 3), dtype=indices.dtype)
    if primitive is PrimitiveType.TRIANGLE_LIST:
        return indices[: count * 3].reshape(count, 3)
    if primitive is PrimitiveType.TRIANGLE_STRIP:
        tris = np.empty((count, 3), dtype=indices.dtype)
        tris[:, 0] = indices[:count]
        tris[:, 1] = indices[1 : count + 1]
        tris[:, 2] = indices[2 : count + 2]
        odd = np.arange(count) % 2 == 1
        tris[odd, 0], tris[odd, 1] = tris[odd, 1].copy(), tris[odd, 0].copy()
        return tris
    # TRIANGLE_FAN
    tris = np.empty((count, 3), dtype=indices.dtype)
    tris[:, 0] = indices[0]
    tris[:, 1] = indices[1 : count + 1]
    tris[:, 2] = indices[2 : count + 2]
    return tris


def unique_vertex_fraction(indices: np.ndarray) -> float:
    """Fraction of index slots that reference a vertex for the first time.

    This is the theoretical best-case vertex shading work: a perfect
    (infinite) post-transform cache shades exactly the unique vertices.
    """
    indices = np.asarray(indices)
    if indices.size == 0:
        return 0.0
    return float(np.unique(indices).size) / float(indices.size)
