"""Post-transform vertex cache simulation and index reordering.

The paper (Section III.B, Fig. 5) explains the dominance of triangle lists by
the post-transform vertex cache: a cache-friendly face ordering makes a list
behave like a strip, reaching the theoretical 66% hit rate for adjacent
triangles — and orderings from algorithms like Hoppe's [15] do even better.
``optimize_for_vertex_cache`` implements Tipsify (Sander et al. 2007), a
linear-time relative of those orderings.
"""

from __future__ import annotations

from collections import deque

import numpy as np


def simulate_vertex_cache(
    indices: np.ndarray,
    cache_size: int = 16,
    policy: str = "fifo",
) -> float:
    """Hit rate of a post-transform vertex cache over an index stream.

    ``policy`` is ``"fifo"`` (what real GPUs of the R520 era used) or
    ``"lru"``.  Returns hits / references.
    """
    indices = np.asarray(indices).reshape(-1)
    if indices.size == 0:
        return 0.0
    if policy not in ("fifo", "lru"):
        raise ValueError("policy must be 'fifo' or 'lru'")
    cache: deque[int] = deque()
    members: set[int] = set()
    hits = 0
    for raw in indices:
        idx = int(raw)
        if idx in members:
            hits += 1
            if policy == "lru":
                cache.remove(idx)
                cache.append(idx)
            continue
        cache.append(idx)
        members.add(idx)
        if len(cache) > cache_size:
            members.discard(cache.popleft())
    return hits / indices.size


def optimize_for_vertex_cache(
    triangles: np.ndarray,
    cache_size: int = 16,
) -> np.ndarray:
    """Reorder ``(T, 3)`` triangles for post-transform cache locality.

    Implements the Tipsify greedy: emit the triangles around a focus vertex,
    then hop to the cached vertex with the best remaining fanout.  Returns the
    reordered ``(T, 3)`` array (same triangles, new order).
    """
    triangles = np.asarray(triangles, dtype=np.int64).reshape(-1, 3)
    tri_count = triangles.shape[0]
    if tri_count == 0:
        return triangles.copy()
    vertex_count = int(triangles.max()) + 1

    # vertex -> list of incident triangle ids
    adjacency: list[list[int]] = [[] for _ in range(vertex_count)]
    for t in range(tri_count):
        for v in triangles[t]:
            adjacency[int(v)].append(t)
    live = [len(a) for a in adjacency]
    emitted = np.zeros(tri_count, dtype=bool)
    cache_time = np.full(vertex_count, -(cache_size + 1), dtype=np.int64)
    order: list[int] = []
    dead_stack: list[int] = []
    time = cache_size + 1
    cursor = 0
    focus = 0

    def next_focus(candidates: list[int]) -> int:
        nonlocal cursor
        best, best_score = -1, -1
        for v in candidates:
            if live[v] <= 0:
                continue
            # Will this vertex still be in cache after its fan is emitted?
            pos = time - cache_time[v]
            score = 1 if pos + 2 * live[v] <= cache_size else 0
            if live[v] + score > best_score:
                best, best_score = v, live[v] + score
        if best >= 0:
            return best
        while dead_stack:
            v = dead_stack.pop()
            if live[v] > 0:
                return v
        while cursor < vertex_count and live[cursor] <= 0:
            cursor += 1
        return cursor if cursor < vertex_count else -1

    while focus >= 0:
        ring = [t for t in adjacency[focus] if not emitted[t]]
        candidates: list[int] = []
        for t in ring:
            order.append(t)
            emitted[t] = True
            for v in (int(x) for x in triangles[t]):
                live[v] -= 1
                candidates.append(v)
                dead_stack.append(v)
                if time - cache_time[v] > cache_size:
                    cache_time[v] = time
                    time += 1
        focus = next_focus(candidates)

    if len(order) != tri_count:  # pragma: no cover - safety net
        remaining = [t for t in range(tri_count) if not emitted[t]]
        order.extend(remaining)
    return triangles[np.asarray(order)]
