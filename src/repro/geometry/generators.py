"""Procedural mesh generators.

These stand in for the game art assets we cannot ship: terrain and room
shells for level geometry, cylinders and lumpy capsules for props and
characters, and Doom3-style shadow-volume extrusion for the stencil-shadow
workloads.  All generators are deterministic in their arguments (and seed).
"""

from __future__ import annotations

import numpy as np

from repro.geometry.mesh import Mesh
from repro.geometry.primitives import PrimitiveType


def grid_mesh(
    name: str,
    nx: int,
    nz: int,
    size_x: float,
    size_z: float,
    height_fn=None,
    primitive: PrimitiveType = PrimitiveType.TRIANGLE_LIST,
    uv_tiles: float = 4.0,
    index_size_bytes: int = 2,
) -> Mesh:
    """A regular grid of ``nx`` x ``nz`` cells in the XZ plane.

    Triangle lists are emitted in strip order (each triangle shares an edge
    with its predecessor) so the post-transform vertex cache sees the ~66%
    hit rate the paper measures.  With ``primitive=TRIANGLE_STRIP`` the rows
    are stitched into one strip using degenerate triangles, as the
    Oblivion-era terrain renderers did.
    """
    if nx < 1 or nz < 1:
        raise ValueError("grid needs at least 1x1 cells")
    xs = np.linspace(-size_x / 2.0, size_x / 2.0, nx + 1)
    zs = np.linspace(-size_z / 2.0, size_z / 2.0, nz + 1)
    gx, gz = np.meshgrid(xs, zs, indexing="xy")
    heights = (
        height_fn(gx, gz) if height_fn is not None else np.zeros_like(gx)
    )
    positions = np.stack([gx, heights, gz], axis=-1).reshape(-1, 3)
    u = np.tile((xs - xs[0]) / (xs[-1] - xs[0]), nz + 1) * uv_tiles
    v = np.repeat((zs - zs[0]) / (zs[-1] - zs[0]), nx + 1) * uv_tiles
    uvs = np.stack([u, v], axis=-1)

    def vid(ix: int, iz: int) -> int:
        return iz * (nx + 1) + ix

    if primitive is PrimitiveType.TRIANGLE_LIST:
        indices: list[int] = []
        for iz in range(nz):
            xrange = range(nx) if iz % 2 == 0 else range(nx - 1, -1, -1)
            for ix in xrange:
                a, b = vid(ix, iz), vid(ix + 1, iz)
                c, d = vid(ix, iz + 1), vid(ix + 1, iz + 1)
                # +Y-facing winding; consecutive triangles share an edge so
                # the post-transform cache sees the ~66% adjacent-triangle
                # hit rate (Fig. 5).
                indices.extend((a, c, b, b, c, d))
    elif primitive is PrimitiveType.TRIANGLE_STRIP:
        indices = []
        for iz in range(nz):
            row = []
            for ix in range(nx + 1):
                row.extend((vid(ix, iz), vid(ix, iz + 1)))
            if indices:
                # Stitch with two degenerate triangles.
                indices.extend((indices[-1], row[0]))
            indices.extend(row)
    else:
        raise ValueError("grid_mesh supports TRIANGLE_LIST and TRIANGLE_STRIP")
    return Mesh(
        name=name,
        positions=positions,
        indices=np.asarray(indices, dtype=np.int32),
        uvs=uvs,
        primitive=primitive,
        index_size_bytes=index_size_bytes,
    )


def value_noise_height(seed: int, amplitude: float, feature_size: float):
    """A deterministic value-noise height function for terrain grids."""
    rng = np.random.default_rng(seed)
    lattice = rng.random((64, 64))

    def height(x: np.ndarray, z: np.ndarray) -> np.ndarray:
        fx = np.asarray(x) / feature_size
        fz = np.asarray(z) / feature_size
        ix = np.floor(fx).astype(int) % 63
        iz = np.floor(fz).astype(int) % 63
        tx = fx - np.floor(fx)
        tz = fz - np.floor(fz)
        tx = tx * tx * (3 - 2 * tx)
        tz = tz * tz * (3 - 2 * tz)
        v00 = lattice[ix, iz]
        v10 = lattice[ix + 1, iz]
        v01 = lattice[ix, iz + 1]
        v11 = lattice[ix + 1, iz + 1]
        return amplitude * (
            v00 * (1 - tx) * (1 - tz)
            + v10 * tx * (1 - tz)
            + v01 * (1 - tx) * tz
            + v11 * tx * tz
        )

    return height


def terrain_mesh(
    name: str,
    seed: int,
    size: float,
    cells: int,
    amplitude: float | None = None,
    primitive: PrimitiveType = PrimitiveType.TRIANGLE_LIST,
    index_size_bytes: int = 2,
) -> Mesh:
    """Noise-displaced terrain patch (the Oblivion-style open countryside)."""
    amplitude = size * 0.08 if amplitude is None else amplitude
    return grid_mesh(
        name,
        cells,
        cells,
        size,
        size,
        height_fn=value_noise_height(seed, amplitude, size / 6.0),
        primitive=primitive,
        uv_tiles=size / 4.0,
        index_size_bytes=index_size_bytes,
    )


def box_mesh(
    name: str,
    size,
    subdivisions: int = 1,
    inward: bool = False,
    index_size_bytes: int = 2,
    uv_tiles: float = 2.0,
) -> Mesh:
    """An axis-aligned box made of 6 subdivided faces.

    ``inward=True`` flips the winding so faces point into the box — the shell
    of a room, which is how the indoor engines (Doom3/Quake4/Riddick) see
    most of their level geometry.
    """
    sx, sy, sz = (float(s) for s in np.broadcast_to(np.asarray(size, float), (3,)))
    n = max(1, subdivisions)
    positions: list[np.ndarray] = []
    uvs: list[np.ndarray] = []
    indices: list[int] = []
    # axis = constant axis; sign = face side; (ua, va) = in-face axes.
    faces = [
        (0, +1, 2, 1), (0, -1, 2, 1),
        (1, +1, 0, 2), (1, -1, 0, 2),
        (2, +1, 0, 1), (2, -1, 0, 1),
    ]
    half = np.array([sx, sy, sz]) / 2.0
    for axis, sign, ua, va in faces:
        base = sum(p.shape[0] for p in positions)
        t = np.linspace(-1.0, 1.0, n + 1)
        gu, gv = np.meshgrid(t, t, indexing="xy")
        pts = np.zeros((n + 1, n + 1, 3))
        pts[..., axis] = sign * half[axis]
        pts[..., ua] = gu * half[ua]
        pts[..., va] = gv * half[va]
        positions.append(pts.reshape(-1, 3))
        uvs.append(
            np.stack(
                [(gu + 1) / 2 * uv_tiles, (gv + 1) / 2 * uv_tiles], axis=-1
            ).reshape(-1, 2)
        )
        # Orient triangles so cross(b - a, c - a) points along the desired
        # normal: outward for a solid box, inward for a room shell.
        e_u = np.zeros(3)
        e_u[ua] = 1.0
        e_v = np.zeros(3)
        e_v[va] = 1.0
        desired = np.zeros(3)
        desired[axis] = -sign if inward else sign
        keep_order = float(np.cross(e_u, e_v) @ desired) > 0.0
        for iz in range(n):
            for ix in range(n):
                a = base + iz * (n + 1) + ix
                b, c, d = a + 1, a + (n + 1), a + (n + 2)
                if keep_order:
                    indices.extend((a, b, c, b, d, c))
                else:
                    indices.extend((a, c, b, b, c, d))
    return Mesh(
        name=name,
        positions=np.concatenate(positions),
        indices=np.asarray(indices, dtype=np.int32),
        uvs=np.concatenate(uvs),
        index_size_bytes=index_size_bytes,
    )


def room_mesh(
    name: str,
    size,
    subdivisions: int = 4,
    index_size_bytes: int = 4,
) -> Mesh:
    """Inward-facing box shell: the canonical indoor-scene backdrop."""
    return box_mesh(
        name,
        size,
        subdivisions=subdivisions,
        inward=True,
        index_size_bytes=index_size_bytes,
        uv_tiles=float(subdivisions),
    )


def cylinder_mesh(
    name: str,
    radius: float,
    height: float,
    segments: int = 12,
    rings: int = 2,
    index_size_bytes: int = 2,
) -> Mesh:
    """A closed cylinder (capped) — props, pillars, barrels.

    Closed 2-manifold, so it is a valid stencil-shadow caster.
    """
    segments = max(3, segments)
    rings = max(1, rings)
    positions: list[tuple[float, float, float]] = []
    uvs: list[tuple[float, float]] = []
    angles = np.linspace(0.0, 2 * np.pi, segments, endpoint=False)
    ys = np.linspace(-height / 2.0, height / 2.0, rings + 1)
    for y in ys:
        for k, a in enumerate(angles):
            positions.append((radius * np.cos(a), y, radius * np.sin(a)))
            uvs.append((k / segments * 3.0, (y / height + 0.5) * 2.0))
    indices: list[int] = []
    for r in range(rings):
        for s in range(segments):
            a = r * segments + s
            b = r * segments + (s + 1) % segments
            c = a + segments
            d = b + segments
            indices.extend((a, c, b, b, c, d))
    bottom_center = len(positions)
    positions.append((0.0, -height / 2.0, 0.0))
    uvs.append((0.5, 0.0))
    top_center = len(positions)
    positions.append((0.0, height / 2.0, 0.0))
    uvs.append((0.5, 1.0))
    top_row = rings * segments
    for s in range(segments):
        s2 = (s + 1) % segments
        indices.extend((bottom_center, s, s2))
        indices.extend((top_center, top_row + s2, top_row + s))
    return Mesh(
        name=name,
        positions=np.asarray(positions),
        indices=np.asarray(indices, dtype=np.int32),
        uvs=np.asarray(uvs),
        index_size_bytes=index_size_bytes,
    )


def character_mesh(
    name: str,
    seed: int,
    radius: float = 0.45,
    height: float = 1.8,
    segments: int = 10,
    rings: int = 8,
    index_size_bytes: int = 4,
) -> Mesh:
    """A lumpy capsule standing in for a skinned character model.

    Closed 2-manifold (valid shadow caster); the per-vertex radial noise
    gives it a non-trivial silhouette like a real character.
    """
    rng = np.random.default_rng(seed)
    segments = max(4, segments)
    rings = max(4, rings)
    positions: list[tuple[float, float, float]] = []
    uvs: list[tuple[float, float]] = []
    positions.append((0.0, 0.0, 0.0))  # bottom pole
    uvs.append((0.5, 0.0))
    for r in range(1, rings):
        phi = np.pi * r / rings
        y = height / 2.0 * (1.0 - np.cos(phi)) + 0.0
        ring_radius = radius * np.sin(phi)
        for s in range(segments):
            theta = 2 * np.pi * s / segments
            bump = 1.0 + 0.25 * (rng.random() - 0.5)
            positions.append(
                (
                    ring_radius * bump * np.cos(theta),
                    y,
                    ring_radius * bump * np.sin(theta),
                )
            )
            uvs.append((s / segments * 2.0, r / rings * 2.0))
    positions.append((0.0, height, 0.0))  # top pole
    uvs.append((0.5, 1.0))
    top = len(positions) - 1
    indices: list[int] = []
    for s in range(segments):
        s2 = (s + 1) % segments
        indices.extend((0, 1 + s, 1 + s2))
    for r in range(rings - 2):
        row0 = 1 + r * segments
        row1 = row0 + segments
        for s in range(segments):
            s2 = (s + 1) % segments
            indices.extend((row0 + s, row1 + s, row0 + s2))
            indices.extend((row0 + s2, row1 + s, row1 + s2))
    last_row = 1 + (rings - 2) * segments
    for s in range(segments):
        s2 = (s + 1) % segments
        indices.extend((top, last_row + s2, last_row + s))
    return Mesh(
        name=name,
        positions=np.asarray(positions),
        indices=np.asarray(indices, dtype=np.int32),
        uvs=np.asarray(uvs),
        index_size_bytes=index_size_bytes,
    )


def extrude_shadow_volume(
    mesh: Mesh,
    light_dir,
    extrusion: float = 200.0,
    name: str | None = None,
) -> Mesh:
    """Extrude a Doom3-style z-fail stencil shadow volume from ``mesh``.

    The volume is closed: front cap (light-facing faces), back cap (the same
    faces pushed along the light and flipped) and side quads along the
    silhouette (edges between a light-facing and a back-facing triangle).
    Duplicate vertices are welded by position so non-indexed-shared meshes
    still produce watertight silhouettes.
    """
    light = np.asarray(light_dir, dtype=np.float64)
    norm = np.linalg.norm(light)
    if norm == 0.0:
        raise ValueError("light_dir must be non-zero")
    light = light / norm

    tris = mesh.triangles()
    if tris.shape[0] == 0:
        raise ValueError("mesh has no triangles")
    # Weld vertices by quantized position so edge adjacency is watertight.
    keys = np.round(mesh.positions * 4096.0).astype(np.int64)
    _, weld = np.unique(keys, axis=0, return_inverse=True)
    wtris = weld[tris]

    p0 = mesh.positions[tris[:, 0]]
    e1 = mesh.positions[tris[:, 1]] - p0
    e2 = mesh.positions[tris[:, 2]] - p0
    face_normals = np.cross(e1, e2)
    # A face "faces the light" when the light arrives against its normal.
    lit = (face_normals @ light) < 0.0

    # A silhouette edge separates a light-facing triangle from a
    # back-facing one (or is an open boundary of a light-facing triangle).
    lit_count: dict[tuple[int, int], int] = {}
    unlit_count: dict[tuple[int, int], int] = {}
    directed_lit: dict[tuple[int, int], tuple[int, int]] = {}
    for t in range(wtris.shape[0]):
        a, b, c = (int(v) for v in wtris[t])
        if a == b or b == c or a == c:
            continue  # degenerate stitching triangle
        for u, v in ((a, b), (b, c), (c, a)):
            key = (min(u, v), max(u, v))
            if lit[t]:
                lit_count[key] = lit_count.get(key, 0) + 1
                directed_lit[key] = (u, v)
            else:
                unlit_count[key] = unlit_count.get(key, 0) + 1
    sil_edges = [
        directed
        for key, directed in directed_lit.items()
        if lit_count[key] == 1 and unlit_count.get(key, 0) != 2
    ]

    # Representative position per weld id.
    rep = np.zeros((weld.max() + 1, 3))
    rep[weld] = mesh.positions
    offset = light * extrusion

    positions: list[np.ndarray] = []
    indices: list[int] = []

    def emit(p: np.ndarray) -> int:
        positions.append(p)
        return len(positions) - 1

    for u, v in sil_edges:
        # The directed edge (u -> v) belongs to a lit (front cap) face; the
        # side quad must traverse it the opposite way (v -> u) so the volume
        # closes with consistent outward winding.
        pu, pv = rep[u], rep[v]
        i0 = emit(pv)
        i1 = emit(pu)
        i2 = emit(pu + offset)
        i3 = emit(pv + offset)
        indices.extend((i0, i1, i2, i0, i2, i3))
    lit_tris = wtris[lit & (wtris[:, 0] != wtris[:, 1])]
    for a, b, c in lit_tris:
        pa, pb, pc = rep[int(a)], rep[int(b)], rep[int(c)]
        indices.extend((emit(pa), emit(pb), emit(pc)))  # front cap
        # Back cap: extruded, winding flipped.
        indices.extend((emit(pc + offset), emit(pb + offset), emit(pa + offset)))

    # Weld duplicate vertices so the volume is indexed like real engine
    # volumes are — silhouette/cap vertices are shared, which matters for
    # the post-transform vertex cache statistics.
    pos_arr = np.asarray(positions)
    keys2 = np.round(pos_arr * 1024.0).astype(np.int64)
    _, first_ids, inverse = np.unique(
        keys2, axis=0, return_index=True, return_inverse=True
    )
    welded_positions = pos_arr[first_ids]
    welded_indices = inverse[np.asarray(indices, dtype=np.int64)]
    return Mesh(
        name=name or f"{mesh.name}.shadow",
        positions=welded_positions,
        indices=welded_indices.astype(np.int32),
        uvs=np.zeros((welded_positions.shape[0], 2)),
        index_size_bytes=mesh.index_size_bytes,
    )
