#!/usr/bin/env python3
"""Calibration helper: measured API statistics vs the paper's targets.

Used while tuning the registry's EngineParams.  Run with a list of workload
names (or no argument for all twelve) and an optional frame count:

    python examples/calibrate.py "Doom3/trdemo2" --frames 120
"""

from __future__ import annotations

import argparse

from repro.geometry.primitives import PrimitiveType
from repro.util.tables import format_table
from repro.workloads import all_workloads, build_workload

# (indices/batch, indices/frame, vertex instr, frag instr, frag tex, TL%, TS%, TF%)
PAPER_TARGETS = {
    "UT2004/Primeval": (1110, 249285, 23.46, 4.63, 1.54, 99.9, 0.0, 0.1),
    "Doom3/trdemo1": (275, 196416, 20.31, 12.85, 3.98, 100.0, 0.0, 0.0),
    "Doom3/trdemo2": (304, 136548, 19.35, 12.95, 3.98, 100.0, 0.0, 0.0),
    "Quake4/demo4": (405, 172330, 27.92, 16.29, 4.33, 100.0, 0.0, 0.0),
    "Quake4/guru5": (166, 135051, 24.42, 17.16, 4.54, 100.0, 0.0, 0.0),
    "Riddick/MainFrame": (356, 214965, 16.70, 14.64, 1.94, 100.0, 0.0, 0.0),
    "Riddick/PrisonArea": (658, 239425, 20.96, 13.63, 1.83, 100.0, 0.0, 0.0),
    "FEAR/built-in demo": (641, 331374, 18.19, 21.30, 2.79, 100.0, 0.0, 0.0),
    "FEAR/interval2": (1085, 307202, 21.02, 19.31, 2.72, 96.7, 0.0, 3.3),
    "Half Life 2 LC/built-in": (736, 328919, 27.04, 19.94, 3.88, 100.0, 0.0, 0.0),
    "Oblivion/Anvil Castle": (998, 711196, 24.0, 15.48, 1.36, 46.3, 53.7, 0.0),
    "Splinter Cell 3/first level": (308, 177300, 28.36, 4.62, 2.13, 69.1, 26.7, 4.2),
}


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("names", nargs="*", help="workload names (default: all)")
    parser.add_argument("--frames", type=int, default=200)
    args = parser.parse_args()
    names = args.names or [w.name for w in all_workloads()]

    rows = []
    for name in names:
        wl = build_workload(name)
        stats = wl.api_stats(frames=args.frames)
        share = stats.primitive_share
        tl = 100.0 * share.get(PrimitiveType.TRIANGLE_LIST, 0.0)
        ts = 100.0 * share.get(PrimitiveType.TRIANGLE_STRIP, 0.0)
        tf = 100.0 * share.get(PrimitiveType.TRIANGLE_FAN, 0.0)
        target = PAPER_TARGETS[name]
        rows.append(
            [
                name,
                f"{stats.avg_indices_per_batch:.0f}/{target[0]}",
                f"{stats.avg_indices_per_frame:.0f}/{target[1]}",
                f"{stats.total_batches / stats.frame_count:.0f}/"
                f"{target[1] / target[0]:.0f}",
                f"{stats.avg_vertex_instructions:.2f}/{target[2]:.2f}",
                f"{stats.avg_fragment_instructions:.2f}/{target[3]:.2f}",
                f"{stats.avg_texture_instructions:.2f}/{target[4]:.2f}",
                f"{tl:.1f}/{target[5]:.1f}",
                f"{ts:.1f}/{target[6]:.1f}",
                f"{tf:.1f}/{target[7]:.1f}",
                f"{stats.avg_state_calls_per_frame:.0f}",
            ]
        )
    print(
        format_table(
            [
                "workload",
                "idx/batch",
                "idx/frame",
                "batches/f",
                "vtx instr",
                "frag instr",
                "frag tex",
                "TL%",
                "TS%",
                "TF%",
                "state/f",
            ],
            rows,
            title=f"measured/target over {args.frames} frames",
        )
    )


if __name__ == "__main__":
    main()
