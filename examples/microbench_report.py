#!/usr/bin/env python3
"""Run the GPUBench-style microbenchmarks and print a rate report.

Each microbenchmark stresses one pipeline stage with a purpose-built
workload (the methodology of the paper's reference [12]) and reports the
achieved event rate against the Table II machine rates.

Run:  python examples/microbench_report.py
"""

from repro.gpu.config import GpuConfig
from repro.microbench import run_all
from repro.util.tables import format_table


def main() -> None:
    config = GpuConfig(width=256, height=192)
    rows = []
    peaks = {
        "fill_rate": config.color_rate,
        "texture_rate": config.bilinears_per_cycle,
        "geometry_rate": config.triangles_per_cycle,
        "zstencil_rate": config.zstencil_rate,
    }
    for result in run_all(config):
        peak = peaks[result.name]
        rows.append(
            [
                result.name,
                result.metric,
                result.events,
                f"{result.events_per_cycle:.2f}",
                peak,
                f"{100 * result.events_per_cycle / peak:.0f}%",
                result.bottleneck,
            ]
        )
    print(
        format_table(
            ["benchmark", "metric", "events", "achieved/cycle",
             "peak/cycle", "efficiency", "bottleneck"],
            rows,
            title="GPUBench-style microbenchmarks (Table II machine)",
        )
    )
    print(
        "\nThe texture test saturates the sampler at its configured rate; "
        "the fill and z tests run into the 64 B/cycle memory system first — "
        "the same balance the paper's Table II machine was built around."
    )


if __name__ == "__main__":
    main()
