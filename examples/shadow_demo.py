#!/usr/bin/env python3
"""Render frames of the Doom3-style workload and write them as PPM images.

Demonstrates the stencil-shadow pipeline visually: the written frames show
hard shadows cast by props and characters under the room lights.

Run:  python examples/shadow_demo.py --frames 3 --out-dir shadow_frames
"""

from __future__ import annotations

import argparse
import pathlib

from repro.workloads import build_workload


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--workload", default="Doom3/trdemo2")
    parser.add_argument("--frames", type=int, default=3)
    parser.add_argument("--out-dir", default="shadow_frames")
    args = parser.parse_args()

    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(exist_ok=True)

    workload = build_workload(args.workload, sim=True)
    sim = workload.simulator()
    trace = workload.trace(frames=args.frames)

    for frame in trace.frames():
        sim.run_frame(frame)
        path = out_dir / f"{workload.spec.slug}_{frame.number:03d}.ppm"
        sim.fb.to_ppm(path)
        stats = sim.frame_stats[-1]
        shadowed = (sim.fb.stencil != 0).sum()
        print(
            f"frame {frame.number}: {stats.fragments_blended} blended "
            f"fragments, residual stencil {shadowed} px -> {path}"
        )
    print(f"wrote {args.frames} frames to {out_dir}/")


if __name__ == "__main__":
    main()
