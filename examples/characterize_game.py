#!/usr/bin/env python3
"""Characterize one game workload end-to-end, the way the paper does.

Runs the API-level pass (batches, indices, state calls, shader mix) over the
full-scale trace and the microarchitectural pass (clip/cull, overdraw, quad
fates, caches, memory) on the reduced simulation profile, then prints the
per-workload slice of every table the workload appears in.

Run:  python examples/characterize_game.py "Doom3/trdemo2" --api-frames 120 --sim-frames 6
"""

from __future__ import annotations

import argparse

import repro
from repro.experiments import ExperimentConfig, Runner, paper
from repro.geometry.primitives import PrimitiveType
from repro.gpu.stats import MemClient, QuadFate
from repro.util.tables import format_table


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("name", nargs="?", default="Doom3/trdemo2")
    parser.add_argument("--api-frames", type=int, default=120)
    parser.add_argument("--sim-frames", type=int, default=6)
    parser.add_argument(
        "--no-incremental",
        dest="incremental",
        action="store_false",
        help="force full re-simulation instead of draw-level reuse",
    )
    args = parser.parse_args()
    name = args.name

    print(f"=== API-level characterization: {name} ===")
    api = repro.api_stats(name, frames=args.api_frames)
    share = api.primitive_share
    rows = [
        ["batches/frame", f"{api.total_batches / api.frame_count:.0f}"],
        ["indices/batch", f"{api.avg_indices_per_batch:.0f}"],
        ["indices/frame", f"{api.avg_indices_per_frame:.0f}"],
        ["index MB/s @100fps",
         f"{api.index_bandwidth_bytes_per_s(100) / 1e6:.1f}"],
        ["state calls/frame", f"{api.avg_state_calls_per_frame:.0f}"],
        ["vertex instr/vertex", f"{api.avg_vertex_instructions:.2f}"],
        ["fragment instr", f"{api.avg_fragment_instructions:.2f}"],
        ["fragment TEX instr", f"{api.avg_texture_instructions:.2f}"],
        ["ALU:TEX ratio", f"{api.alu_to_texture_ratio:.2f}"],
    ]
    for prim in PrimitiveType:
        rows.append([f"{prim.value} share", f"{100 * share.get(prim, 0):.1f}%"])
    print(format_table(["metric", "value"], rows))

    if name not in paper.SIMULATED:
        print(f"\n{name} is Direct3D-only in the paper (no ATTILA replay); "
              "API-level characterization complete.")
        return

    print(f"\n=== Microarchitectural characterization: {name} ===")
    result = repro.characterize(
        name, frames=args.sim_frames, incremental=args.incremental
    )
    stats = result.stats
    # Geometry-only replays have no facade shortcut; drive a runner with an
    # explicit frame budget for the clip/cull/traverse pass.
    geometry = Runner(
        ExperimentConfig(
            api_frames=args.api_frames,
            sim_frames=args.sim_frames,
            geometry_frames=max(20, args.sim_frames * 5),
        )
    ).geometry(name)
    clip, cull, traverse = geometry.stats.clip_cull_traverse_percent
    fates = stats.quad_fate_percent
    mem = result.memory
    rows = [
        ["% clipped / culled / traversed",
         f"{clip:.0f} / {cull:.0f} / {traverse:.0f}"],
        ["vertex cache hit rate", f"{stats.vertex_cache_hit_rate:.2%}"],
        ["overdraw raster/zs/shade/blend",
         " / ".join(f"{result.overdraw(s):.1f}"
                    for s in ("raster", "zstencil", "shaded", "blended"))],
        ["tri size raster/zs/shade/blend",
         " / ".join(f"{stats.avg_triangle_size(s):.0f}"
                    for s in ("raster", "zstencil", "shaded", "blended"))],
        ["quad fates HZ/ZS/A/CM/B",
         " / ".join(f"{fates[f]:.1f}" for f in QuadFate)],
        ["quad efficiency", f"{stats.quad_efficiency_raster:.1%}"],
        ["bilinears per texture request",
         f"{stats.bilinears_per_texture_request:.2f}"],
        ["ALU per bilinear", f"{stats.alu_per_bilinear:.2f}"],
        ["HZ share of z-kills", f"{stats.hz_effectiveness:.1%}"],
        ["memory MB/frame", f"{mem.bytes_per_frame(stats.frames) / 1e6:.1f}"],
        ["read fraction", f"{mem.read_fraction:.0%}"],
    ]
    for client in MemClient:
        rows.append(
            [f"traffic {client.value}",
             f"{mem.traffic_distribution[client]:.1f}%"]
        )
    for cache_name, cache in result.caches.items():
        rows.append([f"{cache_name} hit rate", f"{cache.hit_rate:.1%}"])
    print(format_table(["metric", "value"], rows))


if __name__ == "__main__":
    main()
