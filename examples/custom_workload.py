#!/usr/bin/env python3
"""Define and characterize a brand-new synthetic workload via the public API.

This is the downstream-user path: describe a hypothetical 2006-era game
("Nebula Strike", an idTech4-style shooter with heavier shaders than Doom3),
generate its timedemo, and characterize it exactly like the paper's twelve.

Run:  python examples/custom_workload.py
"""

from repro.api.commands import GraphicsApi
from repro.workloads import EngineParams, GameWorkload, SimProfile, WorkloadSpec

NEBULA_STRIKE = WorkloadSpec(
    name="NebulaStrike/e1m1",
    game="Nebula Strike",
    timedemo="e1m1",
    engine="idTech4-like",
    api=GraphicsApi.OPENGL,
    frames=2400,
    duration_s=80.0,
    texture_quality="High/Anisotropic",
    aniso_level=8,
    uses_shaders=True,
    release="mid 2006",
    index_size_bytes=4,
    seed=20060708,
    params=EngineParams(
        render_path="stencil_shadow",
        rooms=8,
        objects_per_room=70,
        casters_per_room=30,
        lights=4,
        lit_rooms=2,
        light_radius_frac=0.3,
        room_size=(24.0, 6.0, 22.0),
        object_tris=90,
        room_tris=900,
        character_tris=500,
        characters_per_room=4,
        arches_per_room=2,
        pillars_per_room=4,
        # Heavier shaders than Doom3: longer interactions, more textures.
        vertex_variants=((30, 0.7), (34, 0.3)),
        fragment_variants=((22, 5, 0.8, False), (18, 4, 0.2, False)),
        alpha_fraction=0.01,
        texture_count=24,
        palette="industrial",
    ),
    sim=SimProfile(geometry_scale=1.0 / 28.0, frames=8),
)


def main() -> None:
    workload = GameWorkload(NEBULA_STRIKE)

    print("== API-level statistics (80 frames) ==")
    api = workload.api_stats(frames=80)
    print(f"batches/frame        {api.total_batches / api.frame_count:.0f}")
    print(f"indices/batch        {api.avg_indices_per_batch:.0f}")
    print(f"indices/frame        {api.avg_indices_per_frame:.0f}")
    print(f"vertex instructions  {api.avg_vertex_instructions:.2f}")
    print(f"fragment instr/TEX   {api.avg_fragment_instructions:.2f} / "
          f"{api.avg_texture_instructions:.2f}")
    print(f"ALU:TEX ratio        {api.alu_to_texture_ratio:.2f}")

    print("\n== Microarchitectural simulation (reduced profile, 4 frames) ==")
    sim_workload = GameWorkload(NEBULA_STRIKE, sim=True)
    result = sim_workload.simulate(frames=4)
    stats = result.stats
    clip, cull, trav = stats.clip_cull_traverse_percent
    print(f"clip/cull/traverse   {clip:.0f}% / {cull:.0f}% / {trav:.0f}%")
    print(f"overdraw (raster)    {result.overdraw('raster'):.1f}")
    print(f"overdraw (blended)   {result.overdraw('blended'):.1f}")
    print(f"vertex cache         {stats.vertex_cache_hit_rate:.1%}")
    print(f"bilinears/request    {stats.bilinears_per_texture_request:.2f} "
          f"(8x aniso cap)")
    print(f"ALU per bilinear     {stats.alu_per_bilinear:.2f}")
    distribution = result.memory.traffic_distribution
    leading = max(distribution, key=lambda c: distribution[c])
    print(f"leading BW consumer  {leading.value} "
          f"({distribution[leading]:.0f}%)")
    print("\nWith 22-instruction interactions the ALU:bilinear ratio rises "
          "toward the paper's crossover — the scenario its conclusion "
          "predicts for newer games.")


if __name__ == "__main__":
    main()
