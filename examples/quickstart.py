#!/usr/bin/env python3
"""Quickstart: render a tiny hand-built scene through the GPU simulator.

Builds two textured props in front of the camera, replays a one-frame API
trace through the full pipeline, prints the per-stage statistics the paper's
tables are made of, and writes the rendered frame to ``quickstart.ppm``.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro.util.mathutil as mu
from repro.api import (
    BindProgram,
    BindTexture,
    Clear,
    Draw,
    Frame,
    GraphicsApi,
    SetUniform,
    Trace,
    TraceMeta,
)
from repro.geometry import box_mesh, grid_mesh
from repro.gpu import GpuConfig, GpuSimulator, TextureResource
from repro.gpu import perf
from repro.shader import library

WIDTH, HEIGHT = 320, 240


def checker_texture(name: str, size: int = 64) -> TextureResource:
    img = np.zeros((size, size, 4), dtype=np.float32)
    img[::2, ::2, :3] = (0.9, 0.7, 0.4)
    img[1::2, 1::2, :3] = (0.9, 0.7, 0.4)
    img[..., 3] = 1.0
    return TextureResource.from_image(name, img)


def main() -> None:
    # 1. Geometry: a floor and a crate.
    floor = grid_mesh("floor", 16, 16, 20.0, 20.0)
    crate = box_mesh("crate", (1.5, 1.5, 1.5), subdivisions=2)

    # 2. Shaders from the library (a 16-instr vertex program with a
    #    directional light, and an 8-instr fragment program with one TEX).
    vp = library.build_vertex_program("vp", 16)
    fp = library.build_fragment_program("fp", 1, 8)

    # 3. One frame of API calls — what GLInterceptor would have recorded.
    view_proj = mu.perspective(70, WIDTH / HEIGHT, 0.1, 100) @ mu.look_at(
        (4.0, 3.0, 6.0), (0.0, 0.5, 0.0)
    )
    crate_model = mu.translate(0.0, 0.75, 0.0) @ mu.rotate_y(0.6)
    calls = [
        Clear(color_value=(0.05, 0.06, 0.09, 1.0)),
        BindProgram("vertex", "vp"),
        BindProgram("fragment", "fp"),
        BindTexture(0, "checker"),
        SetUniform.matrix("mvp", view_proj),
        SetUniform.matrix("model", np.eye(4)),
        Draw("floor", floor.primitive, floor.index_count),
        SetUniform.matrix("mvp", view_proj @ crate_model),
        SetUniform.matrix("model", crate_model),
        Draw("crate", crate.primitive, crate.index_count),
    ]
    meta = TraceMeta("quickstart", GraphicsApi.OPENGL, 1, WIDTH, HEIGHT)
    trace = Trace(meta, [Frame(0, calls)])

    # 4. Simulate.
    sim = GpuSimulator(
        GpuConfig.r520(WIDTH, HEIGHT),
        meshes={"floor": floor, "crate": crate},
        programs={"vp": vp, "fp": fp},
        textures=[checker_texture("checker")],
    )
    result = sim.run_trace(trace)
    stats = result.stats

    print("geometry:")
    print(f"  indices {stats.indices}, assembled {stats.triangles_assembled}, "
          f"clipped {stats.triangles_clipped}, culled {stats.triangles_culled}, "
          f"traversed {stats.triangles_traversed}")
    print(f"  vertex cache hit rate {stats.vertex_cache_hit_rate:.2%}")
    print("fragments:")
    print(f"  rasterized {stats.fragments_rasterized}, z/stencil "
          f"{stats.fragments_zstencil}, shaded {stats.fragments_shaded}, "
          f"blended {stats.fragments_blended}")
    print(f"  quad efficiency {stats.quad_efficiency_raster:.2%}")
    print(f"  bilinears per texture request "
          f"{stats.bilinears_per_texture_request:.2f}")
    print("memory:")
    for client, pct in result.memory.traffic_distribution.items():
        print(f"  {client.value:10s} {pct:5.1f}%")
    print("cache hit rates:",
          {name: round(c.hit_rate, 3) for name, c in result.caches.items()})
    estimate = perf.estimate(stats, result.memory, result.config)
    print(f"bottleneck stage: {estimate.bottleneck}; "
          f"~{estimate.fps_at_clock():.0f} fps at an R520-class 625 MHz")

    sim.fb.to_ppm("quickstart.ppm")
    print("wrote quickstart.ppm")


if __name__ == "__main__":
    main()
