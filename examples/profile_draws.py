#!/usr/bin/env python3
"""Attach the per-draw profiler to a simulated workload frame.

Shows the NVPerfHUD-style use of :class:`repro.gpu.profiler.DrawProfiler`:
rank the heaviest batches of a frame, attribute the frame's memory traffic
to the render passes, and identify which pass structure dominates — the
stencil-shadow games spend their traffic very differently from UT2004.

Run:  python examples/profile_draws.py ["Doom3/trdemo2"]
"""

from __future__ import annotations

import sys

from repro.gpu.profiler import profile_workload
from repro.util.tables import format_table
from repro.workloads import build_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "Doom3/trdemo2"
    workload = build_workload(name, sim=True)
    profile = profile_workload(workload, frames=2)[-1]

    print(f"{name}: frame {profile.frame}, {len(profile.draws)} draws\n")
    rows = [
        [
            record.index,
            record.mesh.rsplit(".", 1)[-1],
            record.pass_kind,
            record.triangles_traversed,
            record.fragments_rasterized,
            record.fragments_shaded,
            f"{record.memory_bytes / 1024:.0f}",
        ]
        for record in profile.heaviest(10, by="memory_bytes")
    ]
    print(
        format_table(
            ["#", "mesh", "pass", "tris", "raster", "shaded", "KB"],
            rows,
            title="Top 10 draws by memory traffic",
        )
    )

    print("\nMemory traffic by pass kind:")
    kinds = profile.by_pass_kind()
    total = sum(kinds.values()) or 1
    for kind, nbytes in sorted(kinds.items(), key=lambda kv: -kv[1]):
        print(f"  {kind:14s} {100 * nbytes / total:5.1f}%")

    shaded = profile.totals("fragments_shaded")
    rasterized = profile.totals("fragments_rasterized")
    print(
        f"\nframe totals: {rasterized} fragments rasterized, "
        f"{shaded} shaded ({shaded / max(rasterized, 1):.0%} of rasterized)"
    )


if __name__ == "__main__":
    main()
