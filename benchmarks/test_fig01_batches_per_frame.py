"""Figure 1: batches per frame over time (OGL and D3D sets)."""

import statistics

from repro.experiments import figures


def test_fig01_batches_per_frame(benchmark, runner, record_exhibit):
    figure = benchmark.pedantic(
        figures.figure1, kwargs={"runner": runner}, rounds=1, iterations=1
    )
    record_exhibit("fig01_batches_per_frame", figure.as_text())
    for name, series in figure.series.items():
        values = series[1:]  # skip the startup frame
        mean = statistics.fmean(values)
        stdev = statistics.pstdev(values)
        assert mean > 50, name
        # The paper's observation: interactive batch counts are highly
        # variable over time (unlike static-model studies).
        assert stdev / mean > 0.05, name
