"""Table XII: fragment instruction mix and the ALU:TEX ratio."""

from repro.experiments import paper, tables


def test_table12_alu_tex(benchmark, runner, record_exhibit):
    comparison = benchmark.pedantic(
        tables.table12, kwargs={"runner": runner}, rounds=1, iterations=1
    )
    record_exhibit("table12_alu_tex", comparison.as_text())
    rows = {row[0]: row for row in comparison.rows}
    for name in paper.WORKLOAD_ORDER:
        measured, published = rows[name][1]
        assert abs(measured - published) / published < 0.10, name
        m_ratio, p_ratio = rows[name][3]
        assert abs(m_ratio - p_ratio) / p_ratio < 0.25, name
    # Paper: the ratio is >= ~2 for all but one game (Splinter Cell 3).
    below_two = [n for n in paper.WORKLOAD_ORDER if rows[n][3][0] < 1.9]
    assert below_two == ["Splinter Cell 3/first level"]
    # ...and the newer games have the most favorable ratios.
    assert rows["Oblivion/Anvil Castle"][3][0] > 8.0
