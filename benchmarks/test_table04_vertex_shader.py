"""Table IV: average vertex shader instructions (Oblivion two regions)."""

from repro.experiments import tables


def test_table04_vertex_shader(benchmark, runner, record_exhibit):
    comparison = benchmark.pedantic(
        tables.table4, kwargs={"runner": runner}, rounds=1, iterations=1
    )
    record_exhibit("table04_vertex_shader", comparison.as_text())
    for row in comparison.rows:
        measured, published = row[1]
        assert abs(measured - published) / published < 0.10, row[0]
    # Oblivion's second region uses distinctly longer vertex programs.
    regions = {row[0]: row[1][0] for row in comparison.rows if "reg" in row[0]}
    assert regions["Oblivion/Anvil Castle (reg2)"] > 1.5 * regions[
        "Oblivion/Anvil Castle (reg1)"
    ]
