"""Table III: average indices per batch and frame, index bandwidth."""

from repro.experiments import paper, tables


def test_table03_indices(benchmark, runner, record_exhibit):
    comparison = benchmark.pedantic(
        tables.table3, kwargs={"runner": runner}, rounds=1, iterations=1
    )
    record_exhibit("table03_indices", comparison.as_text())
    for i, name in enumerate(paper.WORKLOAD_ORDER):
        measured_pf, paper_pf = comparison.rows[i][2]
        assert abs(measured_pf - paper_pf) / paper_pf < 0.25, name
        measured_pb, paper_pb = comparison.rows[i][1]
        assert abs(measured_pb - paper_pb) / paper_pb < 0.30, name
    # Headline: even at 100 fps, index traffic is far below bus bandwidth.
    for row in comparison.rows:
        measured_mbs, _ = row[4]
        assert measured_mbs < 1000.0  # << 1 GB/s
