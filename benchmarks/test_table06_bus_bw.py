"""Table VI: system bus bandwidths from first principles."""

from repro.experiments import tables


def test_table06_bus_bw(benchmark, record_exhibit):
    comparison = benchmark.pedantic(tables.table6, rounds=1, iterations=1)
    record_exhibit("table06_bus_bw", comparison.as_text())
    for row in comparison.rows:
        measured, published = row[3]
        assert abs(measured - published) / published < 0.01, row[0]
