"""Figure 3: state calls per frame — startup and transition spikes."""

from repro.experiments import figures


def test_fig03_state_calls(benchmark, runner, record_exhibit):
    figure = benchmark.pedantic(
        figures.figure3, kwargs={"runner": runner}, rounds=1, iterations=1
    )
    record_exhibit("fig03_state_calls", figure.as_text())
    for name, series in figure.series.items():
        steady = sorted(series[2:])[len(series[2:]) // 2]
        # First frame carries the setup uploads: a decade or more above
        # steady state on the paper's log plots.
        assert series[0] > 4 * steady, name
        assert 100 < steady < 20000, name
