"""Table II: the simulator's machine configuration vs the reference R520."""

from repro.experiments import tables
from repro.gpu.config import GpuConfig


def test_table02_gpu_config(benchmark, record_exhibit):
    comparison = benchmark.pedantic(tables.table2, rounds=1, iterations=1)
    record_exhibit("table02_gpu_config", comparison.as_text())
    config = GpuConfig.r520()
    assert config.triangles_per_cycle == 2
    assert config.bilinears_per_cycle == 16
    assert config.zstencil_rate == 16 and config.color_rate == 16
    assert config.memory_bytes_per_cycle == 64
    assert config.shader_units == 16
