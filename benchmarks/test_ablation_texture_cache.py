"""Ablation: texture cache size and DXT compression vs texture BW.

The paper attributes a ~10x texture bandwidth reduction to the combination
of the texture caches and DXT-compressed textures.
"""

from dataclasses import replace

from repro.gpu.config import scaled_cache
from repro.gpu.stats import MemClient
from repro.util.tables import format_table


def test_ablation_texture_cache(benchmark, runner, record_exhibit):
    wl = runner.workload("UT2004/Primeval", sim=True)
    base_config = wl.simulator().config

    def texture_mb(config):
        result = wl.simulate(frames=2, config=config)
        return result.memory.client_bytes(MemClient.TEXTURE) / 1e6, result

    def run():
        rows = []
        for factor in (0.25, 1.0, 4.0):
            # Scale only the texture hierarchy; the screen-footprint caches
            # stay at the baseline so the sweep isolates texturing.
            config = replace(
                base_config,
                texture_l0=scaled_cache(base_config.texture_l0, factor),
                texture_l1=scaled_cache(base_config.texture_l1, factor),
            )
            mb, result = texture_mb(config)
            rows.append(
                [
                    f"{factor}x texture caches",
                    f"{config.texture_l0.size_bytes} B L0 / "
                    f"{config.texture_l1.size_bytes} B L1",
                    f"{mb:.2f}",
                    f"{100 * result.caches['texture_l0'].hit_rate:.1f}%",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_exhibit(
        "ablation_texture_cache",
        format_table(
            ["configuration", "sizes", "texture MB (2 frames)", "L0 hit"],
            rows,
            title="Ablation: texture cache size vs texture memory traffic",
        ),
    )
    small, base, big = (float(r[2]) for r in rows)
    assert small >= base >= big  # monotone in cache size
    assert small > 1.15 * big  # and the effect is material
