"""Figure 6: indices / assembled / traversed triangles per frame."""

import statistics

from repro.experiments import figures


def test_fig06_triangle_funnel(benchmark, runner, record_exhibit):
    figure = benchmark.pedantic(
        figures.figure6, kwargs={"runner": runner}, rounds=1, iterations=1
    )
    record_exhibit("fig06_triangle_funnel", figure.as_text())
    indices = figure.series["indices"]
    assembled = figure.series["assembled"]
    traversed = figure.series["traversed"]
    for i in range(len(indices)):
        # Pure triangle lists: assembled is exactly indices / 3.
        assert abs(assembled[i] - indices[i] / 3.0) <= 1.0
        assert traversed[i] <= assembled[i]
    ratio = statistics.fmean(traversed) / statistics.fmean(assembled)
    assert 0.2 < ratio < 0.7  # most triangles clip or cull away
