"""Ablation: triangle strips vs lists with a post-transform vertex cache.

Reproduces the paper's Section III.B argument: with the cache, an optimized
triangle list shades roughly as few vertices as a strip, so the only strip
advantage left is index-count reduction — not worth the authoring pain.
"""

from repro.geometry import grid_mesh, simulate_vertex_cache
from repro.geometry.primitives import PrimitiveType, assemble_triangles
from repro.util.tables import format_table


def test_ablation_strips_vs_lists(benchmark, record_exhibit):
    def run():
        as_list = grid_mesh("list", 48, 48, 10, 10)
        as_strip = grid_mesh(
            "strip", 48, 48, 10, 10, primitive=PrimitiveType.TRIANGLE_STRIP
        )
        rows = []
        for mesh in (as_list, as_strip):
            tris = assemble_triangles(mesh.indices, mesh.primitive)
            unique = len(set(mesh.indices.tolist()))
            hit = simulate_vertex_cache(mesh.indices, cache_size=16)
            shaded = round(mesh.index_count * (1 - hit))
            rows.append(
                [
                    mesh.primitive.value,
                    mesh.index_count,
                    int(tris.shape[0]),
                    unique,
                    f"{hit:.3f}",
                    shaded,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_exhibit(
        "ablation_strips_vs_lists",
        format_table(
            ["primitive", "indices", "triangles", "unique verts",
             "cache hit", "verts shaded"],
            rows,
            title="Ablation: strips vs lists through a 16-entry FIFO cache",
        ),
    )
    list_row, strip_row = rows
    # The list sends ~3x the indices...
    assert list_row[1] > 2.5 * strip_row[1]
    # ...but shades within ~25% of the vertices a strip shades.
    assert list_row[5] < 1.25 * strip_row[5]
