"""Table VII: clipped / culled / traversed triangle percentages."""

from repro.experiments import paper, tables


def test_table07_clip_cull(benchmark, runner, record_exhibit):
    comparison = benchmark.pedantic(
        tables.table7, kwargs={"runner": runner}, rounds=1, iterations=1
    )
    record_exhibit("table07_clip_cull", comparison.as_text())
    for row in comparison.rows:
        clip, cull, trav = (cell[0] for cell in row[1:4])
        assert abs(clip + cull + trav - 100.0) < 0.5, row[0]
        # Paper's conclusion: clip+cull remove around half or more of the
        # assembled triangles in every simulated game.
        assert clip + cull > 40.0, row[0]
        assert clip > 15.0 and cull > 5.0, row[0]
