"""Table IX: quad fate distribution (HZ/ZS/alpha/colormask/blending)."""

from repro.experiments import tables


def test_table09_quad_kills(benchmark, runner, record_exhibit):
    comparison = benchmark.pedantic(
        tables.table9, kwargs={"runner": runner}, rounds=1, iterations=1
    )
    record_exhibit("table09_quad_kills", comparison.as_text())
    rows = {row[0]: row for row in comparison.rows}
    for name, row in rows.items():
        parts = [cell[0] for cell in row[1:6]]
        assert abs(sum(parts) - 100.0) < 0.5, name
    # UT2004: no color-masked quads, alpha test present, blending dominates.
    ut = rows["UT2004/Primeval"]
    assert ut[4][0] < 1.0 and ut[3][0] > 0.3 and ut[5][0] > 40.0
    # Stencil-shadow games: large color-masked share, small alpha.
    for name in ("Doom3/trdemo2", "Quake4/demo4"):
        row = rows[name]
        assert row[4][0] > 10.0, name
        assert row[3][0] < 2.0, name
        assert row[5][0] < ut[5][0], name
