"""Ablation: deferred rendering bound (the paper's PowerVR remark).

Section III.C: "further improvements could be achieved ... using deferred
rendering techniques [19]".  The analysis rewrites the forward workload with
a perfect depth prepass (the information a TBDR's per-tile sorting recovers)
and measures the shading/texturing it eliminates.
"""

from repro.gpu import deferred
from repro.util.tables import format_table


def test_ablation_deferred(benchmark, runner, record_exhibit):
    wl = runner.workload("UT2004/Primeval", sim=True)

    comparison = benchmark.pedantic(
        deferred.analyze, args=(wl,), kwargs={"frames": 2}, rounds=1, iterations=1
    )
    record_exhibit(
        "ablation_deferred",
        format_table(
            ["metric", "immediate", "deferred", "saved"],
            [
                [
                    "fragments shaded",
                    comparison.immediate_shaded,
                    comparison.deferred_shaded,
                    f"{comparison.shading_saved:.1%}",
                ],
                [
                    "bilinear samples",
                    comparison.immediate_bilinears,
                    comparison.deferred_bilinears,
                    f"{1 - comparison.deferred_bilinears / max(comparison.immediate_bilinears, 1):.1%}",
                ],
                [
                    "texture bytes",
                    comparison.immediate_texture_bytes,
                    comparison.deferred_texture_bytes,
                    f"{comparison.texture_traffic_saved:.1%}",
                ],
            ],
            title="Ablation: deferred rendering bound (UT2004/Primeval)",
        ),
    )
    # A multipass forward engine shades several fragments per pixel;
    # deferring removes the hidden ones.
    assert comparison.deferred_shaded < comparison.immediate_shaded
    assert comparison.shading_saved > 0.25
    assert comparison.deferred_bilinears < comparison.immediate_bilinears
