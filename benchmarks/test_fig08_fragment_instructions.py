"""Figure 8: fragment program size per frame (Quake4 and FEAR)."""

import statistics

from repro.experiments import figures


def test_fig08_fragment_instructions(benchmark, runner, record_exhibit):
    figure = benchmark.pedantic(
        figures.figure8, kwargs={"runner": runner}, rounds=1, iterations=1
    )
    record_exhibit("fig08_fragment_instructions", figure.as_text())
    q4 = statistics.fmean(figure.series["Quake4/demo4 instr"][1:])
    fear = statistics.fmean(figure.series["FEAR/interval2 instr"][1:])
    assert 14.0 < q4 < 19.0  # paper: ~16.3
    assert 17.0 < fear < 22.0  # paper: ~19.3
    q4_tex = statistics.fmean(figure.series["Quake4/demo4 tex"][1:])
    fear_tex = statistics.fmean(figure.series["FEAR/interval2 tex"][1:])
    assert q4_tex > fear_tex  # idTech4 interactions sample more textures
