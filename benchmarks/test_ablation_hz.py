"""Ablation: Hierarchical Z effectiveness (Section III.C discussion).

The paper reports HZ removing ~90% (UT2004), ~60% (Doom3) and ~50% (Quake4)
of the z-killable quads.  This ablation reruns Doom3 with HZ disabled and
confirms (a) the fragment results are identical (HZ is conservative) and
(b) with HZ on, a large share of z-kills happen early.
"""

from dataclasses import replace

from repro.experiments import paper
from repro.gpu.stats import QuadFate
from repro.util.tables import format_table


def test_ablation_hz(benchmark, runner, record_exhibit):
    def run():
        rows = []
        for name in paper.SIMULATED:
            result = runner.sim(name)
            effectiveness = result.stats.hz_effectiveness
            rows.append(
                [name, f"{100 * effectiveness:.0f}%",
                 f"{100 * paper.HZ_EFFECTIVENESS[name]:.0f}%"]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["Game/Timedemo", "HZ share of z-kills", "paper"],
        rows,
        title="Ablation: Hierarchical-Z effectiveness",
    )

    # Rerun one workload with HZ off: blended output must be unchanged.
    wl = runner.workload("Doom3/trdemo2", sim=True)
    base = wl.simulator().config
    on = wl.simulate(frames=2, config=base)
    off = wl.simulate(frames=2, config=replace(base, hierarchical_z=False))
    assert off.stats.quad_fates.get(QuadFate.HZ, 0) == 0
    assert on.stats.quad_fates.get(QuadFate.HZ, 0) > 0
    for fon, foff in zip(on.frame_stats, off.frame_stats):
        assert fon.fragments_blended == foff.fragments_blended
        assert fon.fragments_rasterized == foff.fragments_rasterized
    text += "\nHZ-off rerun: blended fragments identical (HZ is conservative)"
    record_exhibit("ablation_hz", text)

    for name in paper.SIMULATED:
        assert runner.sim(name).stats.hz_effectiveness > 0.15, name
