"""Table V: primitive utilization (lists dominate; Oblivion strips)."""

from repro.experiments import paper, tables


def test_table05_primitives(benchmark, runner, record_exhibit):
    comparison = benchmark.pedantic(
        tables.table5, kwargs={"runner": runner}, rounds=1, iterations=1
    )
    record_exhibit("table05_primitives", comparison.as_text())
    rows = {row[0]: row for row in comparison.rows}
    for name in paper.WORKLOAD_ORDER:
        measured_tl, paper_tl = rows[name][1]
        assert abs(measured_tl - paper_tl) <= 10.0, name
    # Strips only matter for Oblivion (and a little for Splinter Cell).
    assert rows["Oblivion/Anvil Castle"][2][0] > 40.0
    assert rows["Doom3/trdemo2"][1][0] == 100.0
