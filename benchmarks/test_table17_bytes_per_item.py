"""Table XVII: bytes of memory traffic per shaded vertex / fragment."""

from repro.experiments import tables


def test_table17_bytes_per_item(benchmark, runner, record_exhibit):
    comparison = benchmark.pedantic(
        tables.table17, kwargs={"runner": runner}, rounds=1, iterations=1
    )
    record_exhibit("table17_bytes_per_item", comparison.as_text())
    for row in comparison.rows:
        vertex_bytes, zst, shaded, color = (cell[0] for cell in row[1:5])
        # Vertices are far fatter than fragments (attributes + index).
        assert vertex_bytes > 5 * zst, row[0]
        assert 15.0 < vertex_bytes < 120.0, row[0]
        # Fast clear + compression keep ZS under the naive 8 B/fragment.
        assert zst < 8.0, row[0]
        # Compressed textures + cache keep texel traffic under
        # 16 B/bilinear-sample naive cost.
        assert shaded < 16.0, row[0]
