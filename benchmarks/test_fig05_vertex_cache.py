"""Figure 5: post-transform vertex cache hit rate (~66% plateau)."""

import statistics

from repro.experiments import figures, paper


def test_fig05_vertex_cache(benchmark, runner, record_exhibit):
    figure = benchmark.pedantic(
        figures.figure5, kwargs={"runner": runner}, rounds=1, iterations=1
    )
    record_exhibit("fig05_vertex_cache", figure.as_text())
    for name, series in figure.series.items():
        mean = statistics.fmean(series)
        # Close to the theoretical 66% adjacent-triangle rate; the paper
        # reports dips from scattered triangles and rises from optimized
        # face orders.
        assert abs(mean - paper.VERTEX_CACHE_THEORETICAL) < 0.15, name
