"""Figure 7: average triangle size per frame at three stages."""

import statistics

from repro.experiments import figures


def test_fig07_triangle_size(benchmark, runner, record_exhibit):
    figure = benchmark.pedantic(
        figures.figure7, kwargs={"runner": runner}, rounds=1, iterations=1
    )
    record_exhibit("fig07_triangle_size", figure.as_text())
    raster = statistics.fmean(figure.series["raster"])
    zst = statistics.fmean(figure.series["zst"])
    shaded = statistics.fmean(figure.series["shaded"])
    assert raster >= zst >= shaded > 0
