"""Table VIII: average triangle size in fragments per pipeline stage."""

from repro.experiments import tables


def test_table08_triangle_size(benchmark, runner, record_exhibit):
    comparison = benchmark.pedantic(
        tables.table8, kwargs={"runner": runner}, rounds=1, iterations=1
    )
    record_exhibit("table08_triangle_size", comparison.as_text())
    rows = {row[0]: row for row in comparison.rows}
    for name, row in rows.items():
        raster, zst, shaded, blended = (cell[0] for cell in row[1:5])
        # Funnel: triangles only lose fragments down the pipeline.
        assert raster >= zst >= blended > 0, name
        # Paper: triangle sizes remain large (hundreds of fragments).
        assert raster > 60, name
    # Sizes stay in the paper's order of magnitude (hundreds of fragments
    # at the reduced resolution; the full-resolution equivalents scale by
    # the pixel ratio).
    for name, row in rows.items():
        assert 60 < row[1][0] < 3000, name
