"""Table XVI: memory traffic distribution per GPU stage."""

from repro.experiments import tables


def test_table16_traffic_split(benchmark, runner, record_exhibit):
    comparison = benchmark.pedantic(
        tables.table16, kwargs={"runner": runner}, rounds=1, iterations=1
    )
    record_exhibit("table16_traffic_split", comparison.as_text())
    rows = {
        row[0]: [cell[0] for cell in row[1:7]] for row in comparison.rows
    }
    for name, parts in rows.items():
        assert abs(sum(parts) - 100.0) < 0.5, name
    # UT2004: texturing is the largest consumer.
    ut = rows["UT2004/Primeval"]
    assert ut[2] == max(ut), "texture should dominate UT2004"
    # Doom3/Quake4: z/stencil overtakes texturing (stencil shadows).
    for name in ("Doom3/trdemo2", "Quake4/demo4"):
        vertex, zst, tex, color, dac, cp = rows[name]
        assert zst >= tex * 0.9, name
        # The color share runs above the paper at reduced scale (see
        # EXPERIMENTS.md); z/stencil must still be of the same magnitude.
        assert zst > color * 0.7, name
        assert vertex < 10.0 and dac < 10.0 and cp < 13.0, name
