"""Table XIII: dynamic bilinear cost of anisotropic filtering."""

from repro.experiments import tables


def test_table13_bilinear(benchmark, runner, record_exhibit):
    comparison = benchmark.pedantic(
        tables.table13, kwargs={"runner": runner}, rounds=1, iterations=1
    )
    record_exhibit("table13_bilinear", comparison.as_text())
    for row in comparison.rows:
        bilinears = row[1][0]
        alu_per_bilinear = row[2][0]
        # 16x aniso + trilinear: several bilinear probes per request...
        assert 2.0 < bilinears < 8.0, row[0]
        # ...so the headline result holds: ALU per *bilinear* drops below 1,
        # and 3:1 ALU-biased architectures cannot be kept busy.
        assert alu_per_bilinear < 1.0, row[0]
