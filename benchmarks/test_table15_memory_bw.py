"""Table XV: memory bandwidth per frame and read/write split."""

from repro.experiments import tables


def test_table15_memory_bw(benchmark, runner, record_exhibit):
    comparison = benchmark.pedantic(
        tables.table15, kwargs={"runner": runner}, rounds=1, iterations=1
    )
    record_exhibit("table15_memory_bw", comparison.as_text())
    for row in comparison.rows:
        read_pct = row[2][0]
        # Paper: reads are roughly double the writes.
        assert 55.0 < read_pct < 85.0, row[0]
        mb_frame = row[1][0]
        assert mb_frame > 10.0, row[0]
