"""Ablation: Z fast-clear + compression halve Z/stencil traffic.

The paper: "The z fast clear and compression algorithm is reducing by a
half the BW requirements of the z and stencil stage."
"""

from dataclasses import replace

from repro.gpu.stats import MemClient
from repro.util.tables import format_table


def test_ablation_z_compression(benchmark, runner, record_exhibit):
    wl = runner.workload("Doom3/trdemo2", sim=True)
    base_config = wl.simulator().config

    def zs_mb(**overrides):
        config = replace(base_config, **overrides)
        result = wl.simulate(frames=2, config=config)
        return result.memory.client_bytes(MemClient.ZSTENCIL) / 1e6

    def run():
        with_both = zs_mb()
        no_compress = zs_mb(z_compression=False)
        neither = zs_mb(z_compression=False, z_fast_clear=False)
        return with_both, no_compress, neither

    with_both, no_compress, neither = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    record_exhibit(
        "ablation_z_compression",
        format_table(
            ["configuration", "Z/stencil MB (2 frames)", "vs baseline"],
            [
                ["fast clear + compression", f"{with_both:.2f}", "1.00x"],
                ["fast clear only", f"{no_compress:.2f}",
                 f"{no_compress / with_both:.2f}x"],
                ["neither", f"{neither:.2f}", f"{neither / with_both:.2f}x"],
            ],
            title="Ablation: Z fast clear and compression vs Z/stencil traffic",
        ),
    )
    assert no_compress >= with_both
    assert neither > no_compress
    # Paper's claim: the pair roughly halves Z/stencil bandwidth.
    assert neither > 1.4 * with_both
