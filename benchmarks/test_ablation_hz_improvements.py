"""Ablation: the paper's proposed HZ improvements (Section III.C).

"However further improvements could be achieved with a better HZ
implementation (for example combining stencil into the HZ buffer or a HZ
storing maximum and minimum values)."  Both are implemented behind config
flags; this ablation measures how much earlier quad culling they buy on the
stencil-shadow workload while leaving the rendered output untouched.
"""

from dataclasses import replace

from repro.gpu.stats import QuadFate
from repro.util.tables import format_table


def test_ablation_hz_improvements(benchmark, runner, record_exhibit):
    wl = runner.workload("Doom3/trdemo2", sim=True)
    base_config = wl.simulator().config

    def run():
        rows = []
        results = {}
        for label, overrides in (
            ("baseline HZ (max only)", {}),
            ("+ min/max HZ", {"hz_min_max": True}),
            ("+ stencil in HZ", {"hz_min_max": True, "hz_stencil": True}),
        ):
            result = wl.simulate(frames=2, config=replace(base_config, **overrides))
            fates = result.stats.quad_fate_percent
            rows.append(
                [
                    label,
                    f"{fates[QuadFate.HZ]:.1f}%",
                    f"{fates[QuadFate.ZSTENCIL]:.1f}%",
                    f"{result.stats.hz_effectiveness:.1%}",
                ]
            )
            results[label] = result
        return rows, results

    rows, results = benchmark.pedantic(run, rounds=1, iterations=1)
    record_exhibit(
        "ablation_hz_improvements",
        format_table(
            ["configuration", "HZ-killed quads", "ZS-killed quads",
             "HZ share of z-kills"],
            rows,
            title="Ablation: Section III.C HZ improvements (Doom3/trdemo2)",
        ),
    )
    baseline = results["baseline HZ (max only)"]
    improved = results["+ stencil in HZ"]
    # Conservative: identical blended output...
    assert (
        baseline.stats.fragments_blended == improved.stats.fragments_blended
    )
    # ...while moving kills earlier in the pipeline.
    assert improved.stats.quad_fates.get(
        QuadFate.HZ, 0
    ) >= baseline.stats.quad_fates.get(QuadFate.HZ, 0)
    assert improved.stats.quad_fates.get(
        QuadFate.ZSTENCIL, 0
    ) <= baseline.stats.quad_fates.get(QuadFate.ZSTENCIL, 0)
