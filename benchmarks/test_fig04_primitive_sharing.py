"""Figure 4: vertex sharing of triangle lists / strips / fans."""

from repro.experiments import figures


def test_fig04_primitive_sharing(benchmark, record_exhibit):
    figure = benchmark.pedantic(figures.figure4, rounds=1, iterations=1)
    record_exhibit("fig04_primitive_sharing", figure.as_text())
    assert all(v == 3.0 for v in figure.series["TL"])
    # Strips and fans converge towards ~1 index per triangle.
    assert figure.series["TS"][-1] < 1.1
    assert figure.series["TF"][-1] < 1.1
