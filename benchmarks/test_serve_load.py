"""Scaled-down serve load test: the full harness at CI-friendly scale.

Runs the same :func:`repro.serve.loadtest.run_loadtest` the
``repro loadtest`` command uses — concurrent tenants, duplicate-heavy
traffic, cold wave then warm (registry-reset) wave — but with a stub farm
worker and a modest fleet so the whole thing finishes in seconds on one
core.  The asserted properties are scale-independent: zero dropped or
incorrect responses, duplicates served without recomputation, and every
metric field the full ``BENCH_serve.json`` carries present and sane.
"""

from __future__ import annotations

import time

from repro.serve import check_loadtest, run_loadtest
from repro.util.tables import format_table


def _stub_worker(job, cache_dir, checkpoint_every):
    time.sleep(0.01)
    return {"workload": job.workload, "seed": job.seed}


def test_serve_load(record_exhibit, tmp_path):
    doc = run_loadtest(
        clients=24,
        requests_per_client=2,
        unique=4,
        lanes=2,
        queue_depth=8,
        timeout=120.0,
        worker=_stub_worker,
        out=tmp_path / "BENCH_serve_small.json",
    )

    problems = check_loadtest(doc)
    assert problems == [], problems
    assert doc["requests"] == 2 * 24 * 2  # cold + warm waves, none dropped
    assert doc["errors"] == 0 and doc["dropped"] == 0
    # 4 unique specs: computed once cold; the warm wave replays them from
    # the persistent store after the registry reset.
    assert doc["cache"]["fresh_runs"] <= 2 * 4
    assert doc["cache"]["hit_rate"] > 0.5
    for wave in doc["waves"].values():
        assert wave["latency_s"]["p50"] <= wave["latency_s"]["p99"]
        assert wave["fairness"]["spread"] >= 1.0

    rows = [
        [
            name,
            wave["requests"],
            f"{wave['latency_s']['p50'] * 1e3:.0f}",
            f"{wave['latency_s']['p99'] * 1e3:.0f}",
            f"{wave['throughput_rps']:.0f}",
            f"{wave['fairness']['spread']:.2f}",
        ]
        for name, wave in doc["waves"].items()
    ]
    record_exhibit(
        "serve_load",
        format_table(
            ["wave", "requests", "p50 ms", "p99 ms", "req/s", "fairness"],
            rows,
            title=(
                f"serve loadtest: {doc['clients']} clients, "
                f"{doc['unique_specs']} unique specs, cache hit rate "
                f"{doc['cache']['hit_rate']}"
            ),
        ),
    )
