"""Table X: quad efficiency (complete 2x2 quads)."""

from repro.experiments import tables


def test_table10_quad_efficiency(benchmark, runner, record_exhibit):
    comparison = benchmark.pedantic(
        tables.table10, kwargs={"runner": runner}, rounds=1, iterations=1
    )
    record_exhibit("table10_quad_efficiency", comparison.as_text())
    for row in comparison.rows:
        raster, zst = row[1][0], row[2][0]
        # Paper's point vs [1]: efficiency well above their 40-60%.
        assert raster > 65.0, row[0]
        assert zst > 60.0, row[0]
