"""Shared fixtures for the reproduction benchmarks.

Each benchmark regenerates one of the paper's exhibits.  The heavy
measurement runs (API statistics over the twelve workloads, simulations of
the three OpenGL games) are executed once per session through the shared
runner and cached; the benchmarked callable is the exhibit regeneration.

Every benchmark writes its rendered comparison to ``results/<exhibit>.txt``
so the measured-vs-paper tables survive the run.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.runner import default_runner

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def runner():
    """Process-wide cached measurement runner."""
    return default_runner()


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record_exhibit(results_dir):
    """Save an exhibit's text rendering and echo it to the terminal."""

    def save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print()
        print(text)

    return save
