"""Shared fixtures for the reproduction benchmarks.

Each benchmark regenerates one of the paper's exhibits.  The heavy
measurement runs (API statistics over the twelve workloads, simulations of
the three OpenGL games) go through the execution farm (:mod:`repro.farm`):
the session fixture prefetches them all as one batch, which shards the
cold runs across worker processes (``REPRO_FARM_JOBS`` overrides the
worker count) and satisfies warm runs from the persistent artifact cache
(``.repro-cache/``, ``REPRO_CACHE_DIR`` override) — so a re-run of the
benchmark suite skips straight to exhibit regeneration.

Every benchmark writes its rendered comparison to ``results/<exhibit>.txt``
so the measured-vs-paper tables survive the run.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.runner import default_runner

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def runner():
    """Process-wide measurement runner, warmed through the execution farm."""
    shared = default_runner()
    shared.prefetch()
    return shared


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record_exhibit(results_dir):
    """Save an exhibit's text rendering and echo it to the terminal."""

    def save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print()
        print(text)

    return save
