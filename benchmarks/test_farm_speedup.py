"""Micro-benchmark: execution-farm speedups, recorded to results/.

Times the same batch of measurement jobs three ways — serial cold,
parallel cold, and warm from the artifact cache — and writes the wall
times (plus the derived speedups) to ``results/farm_speedup.txt``.  The
parallel speedup depends on the machine; the warm-cache speedup is the
subsystem's contract and is asserted.
"""

from __future__ import annotations

import os
import time

from repro.farm import ArtifactStore, Farm, api_job, sim_job
from repro.util.tables import format_table

#: Small but representative batch: four API passes and one simulation.
BATCH = [
    api_job("UT2004/Primeval", 3),
    api_job("Doom3/trdemo2", 3),
    api_job("FEAR/interval2", 3),
    api_job("Half Life 2 LC/built-in", 3),
    sim_job("UT2004/Primeval", 1),
]


def _timed_run(farm: Farm) -> float:
    start = time.perf_counter()
    farm.run(BATCH)
    return time.perf_counter() - start


def test_farm_speedup(tmp_path, record_exhibit):
    # At least two workers so the pool path is exercised even on one core
    # (the speedup column then honestly shows the pool overhead).
    workers = max(2, min(4, os.cpu_count() or 1))

    serial_cold = _timed_run(Farm(ArtifactStore(tmp_path / "serial"), jobs=1))
    parallel_store = tmp_path / "parallel"
    parallel_cold = _timed_run(Farm(ArtifactStore(parallel_store), jobs=workers))
    warm = _timed_run(Farm(ArtifactStore(parallel_store), jobs=workers))

    rows = [
        ["serial, cold cache (1 worker)", f"{serial_cold:.2f}", "1.0x"],
        [
            f"parallel, cold cache ({workers} workers)",
            f"{parallel_cold:.2f}",
            f"{serial_cold / parallel_cold:.1f}x",
        ],
        [
            "warm cache (any workers)",
            f"{warm:.3f}",
            f"{serial_cold / max(warm, 1e-9):.0f}x",
        ],
    ]
    record_exhibit(
        "farm_speedup",
        format_table(
            ["execution mode", "wall s", "speedup vs serial cold"],
            rows,
            title=f"Execution farm: {len(BATCH)} measurement jobs",
        ),
    )

    # The warm-cache contract: repeat runs skip execution entirely.
    assert warm * 5 < parallel_cold
