"""Table I: the game workload descriptions (registry vs paper)."""

from repro.experiments import tables


def test_table01_workloads(benchmark, runner, record_exhibit):
    comparison = benchmark.pedantic(
        tables.table1, kwargs={"runner": runner}, rounds=1, iterations=1
    )
    record_exhibit("table01_workloads", comparison.as_text())
    # Every Table-I row is present with the paper's frame counts and APIs.
    assert len(comparison.rows) == 12
    for row in comparison.rows:
        measured_frames, paper_frames = row[1]
        assert measured_frames == paper_frames
