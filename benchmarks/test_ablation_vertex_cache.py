"""Ablation: post-transform vertex cache size and policy (Fig. 5 context).

Sweeps the FIFO cache size over a real workload mesh set and compares FIFO
against LRU — quantifying the paper's claim that a modest cache recovers a
strip's vertex sharing from plain triangle lists.
"""

from repro.geometry.optimize import simulate_vertex_cache
from repro.util.tables import format_table


def test_ablation_vertex_cache(benchmark, runner, record_exhibit):
    wl = runner.workload("Doom3/trdemo2", sim=True)
    meshes = [
        m for m in wl.meshes.values() if ".vol" not in m.name
    ]

    def run():
        rows = []
        for size in (4, 8, 16, 32, 64):
            fifo_rates = []
            lru_rates = []
            for mesh in meshes:
                if mesh.index_count < 6:
                    continue
                fifo_rates.append(
                    simulate_vertex_cache(mesh.indices, size, "fifo")
                )
                lru_rates.append(
                    simulate_vertex_cache(mesh.indices, size, "lru")
                )
            rows.append(
                [
                    size,
                    f"{sum(fifo_rates) / len(fifo_rates):.3f}",
                    f"{sum(lru_rates) / len(lru_rates):.3f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_exhibit(
        "ablation_vertex_cache",
        format_table(
            ["cache entries", "FIFO hit rate", "LRU hit rate"],
            rows,
            title="Ablation: post-transform vertex cache size and policy "
            "(Doom3 mesh set)",
        ),
    )
    sizes = {row[0]: (float(row[1]), float(row[2])) for row in rows}
    # Hit rate grows with size and saturates near the 2/3 sharing bound.
    assert sizes[4][0] < sizes[16][0] <= sizes[64][0] + 1e-9
    assert 0.5 < sizes[16][0] < 0.75  # the paper's ~66% at 16 entries
    # LRU never loses to FIFO on these streams.
    for fifo, lru in sizes.values():
        assert lru >= fifo - 1e-9
