"""Figure 2: per-frame index traffic in MB."""

import statistics

from repro.experiments import figures


def test_fig02_index_bw(benchmark, runner, record_exhibit):
    figure = benchmark.pedantic(
        figures.figure2, kwargs={"runner": runner}, rounds=1, iterations=1
    )
    record_exhibit("fig02_index_bw", figure.as_text())
    for name, series in figure.series.items():
        mean = statistics.fmean(series[1:])
        # The paper's plots live under 4 MB/frame for every workload.
        assert 0.05 < mean < 4.0, name
