"""Table XIV: Z/texture/color cache hit rates."""

from repro.experiments import tables


def test_table14_cache_hits(benchmark, runner, record_exhibit):
    comparison = benchmark.pedantic(
        tables.table14, kwargs={"runner": runner}, rounds=1, iterations=1
    )
    record_exhibit("table14_cache_hits", comparison.as_text())
    rows = {row[0]: row for row in comparison.rows}
    for cache in ("zstencil", "texture_l0", "color"):
        for cell in rows[cache][4:]:
            measured = cell[0] if isinstance(cell, tuple) else cell
            assert measured > 80.0, cache
    # The small L0 in front of L1 still removes most texel traffic.
    for cell in rows["texture_l0"][4:]:
        measured = cell[0] if isinstance(cell, tuple) else cell
        assert measured > 85.0
