"""Table XI: overdraw per stage; stencil shadows inflate raster/ZS."""

from repro.experiments import tables


def test_table11_overdraw(benchmark, runner, record_exhibit):
    comparison = benchmark.pedantic(
        tables.table11, kwargs={"runner": runner}, rounds=1, iterations=1
    )
    record_exhibit("table11_overdraw", comparison.as_text())
    rows = {row[0]: [cell[0] for cell in row[1:5]] for row in comparison.rows}
    for name, (raster, zst, shaded, blended) in rows.items():
        assert raster >= zst, name
        assert shaded >= blended, name
    # Doom3/Quake4 rasterize far more fragments per pixel than UT2004 while
    # converging to a similar number of blended fragments.
    assert rows["Doom3/trdemo2"][0] > 1.5 * rows["UT2004/Primeval"][0]
    assert rows["Quake4/demo4"][0] > 1.5 * rows["UT2004/Primeval"][0]
    for name in rows:
        assert 2.0 < rows[name][3] < 7.0, name
